// Shared helpers for the integration tests: a naive reference implementation
// of every aggregate over std::map, used as the oracle for all operators.

#ifndef MEMAGG_TESTS_TEST_UTIL_H_
#define MEMAGG_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/aggregate.h"
#include "core/result.h"

namespace memagg {

/// Naive reference vector aggregation over std::map, with an optional key
/// range filter.
inline VectorResult ReferenceVectorAggregate(
    const std::vector<uint64_t>& keys, const std::vector<uint64_t>& values,
    AggregateFunction fn, uint64_t lo = 0, uint64_t hi = ~0ULL) {
  std::map<uint64_t, std::vector<uint64_t>> groups;
  for (size_t i = 0; i < keys.size(); ++i) {
    groups[keys[i]].push_back(values.empty() ? 0 : values[i]);
  }
  VectorResult result;
  for (auto& [key, group_values] : groups) {
    if (key < lo || key > hi) continue;
    double value = 0.0;
    switch (fn) {
      case AggregateFunction::kCount:
        value = static_cast<double>(group_values.size());
        break;
      case AggregateFunction::kSum: {
        uint64_t sum = 0;
        for (uint64_t v : group_values) sum += v;
        value = static_cast<double>(sum);
        break;
      }
      case AggregateFunction::kMin:
        value = static_cast<double>(
            *std::min_element(group_values.begin(), group_values.end()));
        break;
      case AggregateFunction::kMax:
        value = static_cast<double>(
            *std::max_element(group_values.begin(), group_values.end()));
        break;
      case AggregateFunction::kAverage: {
        uint64_t sum = 0;
        for (uint64_t v : group_values) sum += v;
        value = static_cast<double>(sum) /
                static_cast<double>(group_values.size());
        break;
      }
      case AggregateFunction::kMedian: {
        std::sort(group_values.begin(), group_values.end());
        const size_t n = group_values.size();
        value = (n % 2 == 1)
                    ? static_cast<double>(group_values[n / 2])
                    : (static_cast<double>(group_values[n / 2 - 1]) +
                       static_cast<double>(group_values[n / 2])) /
                          2.0;
        break;
      }
      case AggregateFunction::kMode: {
        std::sort(group_values.begin(), group_values.end());
        uint64_t best = group_values[0];
        size_t best_run = 1;
        size_t run = 1;
        for (size_t i = 1; i < group_values.size(); ++i) {
          run = group_values[i] == group_values[i - 1] ? run + 1 : 1;
          if (run > best_run) {
            best_run = run;
            best = group_values[i];
          }
        }
        value = static_cast<double>(best);
        break;
      }
    }
    result.push_back({key, value});
  }
  return result;
}

/// Naive reference median of a column.
inline double ReferenceMedian(std::vector<uint64_t> column) {
  std::sort(column.begin(), column.end());
  const size_t n = column.size();
  return (n % 2 == 1) ? static_cast<double>(column[n / 2])
                      : (static_cast<double>(column[n / 2 - 1]) +
                         static_cast<double>(column[n / 2])) /
                            2.0;
}

/// Sorts a vector result by key (hash operators emit arbitrary order).
inline void SortByKey(VectorResult& result) {
  std::sort(result.begin(), result.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return a.key < b.key;
            });
}

}  // namespace memagg

#endif  // MEMAGG_TESTS_TEST_UTIL_H_
