// Tests for the adaptive aggregation operator and the MigratableAggregator
// interface it is built on (core/adaptive_aggregator.h, core/migratable.h).
//
//   * Migration correctness: partial state extracted from any strategy and
//     absorbed into any other must yield exactly the fixed-strategy result.
//   * Switching correctness: with the rotation hook forcing a switch at
//     every morsel boundary, the result must stay bit-identical to a
//     single-strategy run across the property-test sweep.
//   * Decision plumbing: QueryStats must record switches, migrated rows, and
//     the final strategy; the trace string must reflect the decision path.

#include "core/adaptive_aggregator.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/migratable.h"
#include "core/tree_aggregator.h"
#include "data/dataset.h"
#include "test_util.h"
#include "tree/art.h"

namespace memagg {
namespace {

// --- MigratableAggregator pair-wise migration (direct interface use). ---

struct MigratableFactory {
  const char* name;
  std::unique_ptr<VectorAggregator> op;
  MigratableAggregator<SumAggregate>* mig;
};

std::vector<MigratableFactory> AllMigratables(size_t expected,
                                              ExecutionContext exec) {
  std::vector<MigratableFactory> out;
  {
    auto op = std::make_unique<
        HashVectorAggregator<LinearProbingMap, SumAggregate>>(expected);
    auto* mig = op.get();
    out.push_back({"hash", std::move(op), mig});
  }
  {
    auto op = std::make_unique<TreeVectorAggregator<ArtTree, SumAggregate>>();
    auto* mig = op.get();
    out.push_back({"tree", std::move(op), mig});
  }
  {
    auto op = std::make_unique<LocalPartitionAggregator<SumAggregate>>(
        expected, exec, LocalMergeMode::kCentral);
    auto* mig = op.get();
    out.push_back({"local-central", std::move(op), mig});
  }
  {
    auto op = std::make_unique<LocalPartitionAggregator<SumAggregate>>(
        expected, exec, LocalMergeMode::kTree);
    auto* mig = op.get();
    out.push_back({"local-tree", std::move(op), mig});
  }
  {
    auto op = std::make_unique<RadixPartitionAggregator<SumAggregate>>(
        expected, exec);
    auto* mig = op.get();
    out.push_back({"radix", std::move(op), mig});
  }
  {
    auto op = std::make_unique<StripedParallelAggregator<SumAggregate>>(
        expected, exec);
    auto* mig = op.get();
    out.push_back({"shared-map", std::move(op), mig});
  }
  {
    auto op = std::make_unique<
        SortVectorAggregator<BlockIndirectSorter, SumAggregate>>();
    auto* mig = op.get();
    out.push_back({"sort", std::move(op), mig});
  }
  return out;
}

void ConsumeRange(MigratableAggregator<SumAggregate>* mig,
                  const std::vector<uint64_t>& keys,
                  const std::vector<uint64_t>& values, size_t grain,
                  size_t first_morsel, size_t last_morsel) {
  for (size_t i = first_morsel; i < last_morsel; ++i) {
    Morsel m;
    m.index = i;
    m.begin = i * grain;
    m.end = std::min(keys.size(), m.begin + grain);
    m.worker = 0;
    mig->ConsumeMorsel(keys.data(), values.data(), m);
  }
}

TEST(MigratableTest, EveryPairMigratesExactly) {
  DatasetSpec spec{Distribution::kRseqShuffled, 20000, 512, 71};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 72);
  auto expected = ReferenceVectorAggregate(keys, values,
                                           AggregateFunction::kSum);
  SortByKey(expected);

  const size_t grain = 1024;
  const size_t num_morsels = NumMorselsFor(keys.size(), grain);
  const size_t half = num_morsels / 2;
  const ExecutionContext exec{1};
  const size_t names = AllMigratables(512, exec).size();

  for (size_t a = 0; a < names; ++a) {
    for (size_t b = 0; b < names; ++b) {
      auto froms = AllMigratables(512, exec);
      auto tos = AllMigratables(512, exec);
      MigratableFactory& from = froms[a];
      MigratableFactory& to = tos[b];

      from.mig->BeginConsume(1, keys.size());
      ConsumeRange(from.mig, keys, values, grain, 0, half);
      const ProgressSnapshot progress = from.mig->Progress();
      EXPECT_EQ(progress.rows, half * grain) << from.name;

      to.mig->BeginConsume(1, keys.size());
      to.mig->AbsorbPartialState(from.mig->ExtractPartialState());
      ConsumeRange(to.mig, keys, values, grain, half, num_morsels);
      auto result = to.mig->Finish();
      SortByKey(result);

      ASSERT_EQ(result.size(), expected.size())
          << from.name << " -> " << to.name;
      for (size_t i = 0; i < result.size(); ++i) {
        EXPECT_EQ(result[i].key, expected[i].key)
            << from.name << " -> " << to.name;
        EXPECT_DOUBLE_EQ(result[i].value, expected[i].value)
            << from.name << " -> " << to.name;
      }
    }
  }
}

TEST(MigratableTest, ProgressReportsRowsAndGroups) {
  DatasetSpec spec{Distribution::kRseqShuffled, 8192, 64, 73};
  const auto keys = GenerateKeys(spec);
  const std::vector<uint64_t> values(keys.size(), 1);
  const ExecutionContext exec{1};
  for (auto& factory : AllMigratables(64, exec)) {
    factory.mig->BeginConsume(1, keys.size());
    ConsumeRange(factory.mig, keys, values, 1024, 0,
                 NumMorselsFor(keys.size(), 1024));
    const ProgressSnapshot progress = factory.mig->Progress();
    EXPECT_EQ(progress.rows, keys.size()) << factory.name;
    // Sort buffers raw rows and reports no group estimate; hash-family
    // structures must have materialized every distinct key.
    if (std::string(factory.name) != "sort") {
      EXPECT_GE(progress.groups, 64u) << factory.name;
      EXPECT_GT(progress.bytes, 0u) << factory.name;
    }
  }
}

// --- Adaptive operator: forced rotation across every morsel boundary. ---

class AdaptiveRotationSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(AdaptiveRotationSweep, RotationStaysBitIdenticalToFixed) {
  const int threads = std::get<0>(GetParam());
  const uint64_t cardinality = std::get<1>(GetParam());
  DatasetSpec spec{Distribution::kRseqShuffled, 60000, cardinality, 81};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 82);

  // Fixed single-strategy baseline.
  auto baseline = ReferenceVectorAggregate(keys, values,
                                           AggregateFunction::kAverage);
  SortByKey(baseline);

  ExecutionContext exec{threads};
  exec.morsel_rows = 1024;  // Many boundaries: 59 morsels, 58 decisions.
  AdaptiveOptions options;
  options.rotate = true;        // Switch at every barrier...
  options.chunk_morsels = 1;    // ...which is every morsel boundary.
  options.sample_morsels = 1;
  AdaptiveAggregator<AverageAggregate> adaptive(keys.size(), exec, options);
  adaptive.Build(keys.data(), values.data(), keys.size());
  auto result = adaptive.Iterate();
  SortByKey(result);

  EXPECT_GE(adaptive.strategy_switches(), 10u);
  ASSERT_EQ(result.size(), baseline.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].key, baseline[i].key);
    EXPECT_DOUBLE_EQ(result[i].value, baseline[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndCardinalities, AdaptiveRotationSweep,
    ::testing::Combine(::testing::Values(1, 4),
                       ::testing::Values(64ULL, 4096ULL, 60000ULL)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AdaptiveTest, RotationHandlesHolisticAggregates) {
  DatasetSpec spec{Distribution::kRseqShuffled, 30000, 128, 83};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 500, 84);
  auto baseline = ReferenceVectorAggregate(keys, values,
                                           AggregateFunction::kMedian);
  SortByKey(baseline);

  ExecutionContext exec{4};
  exec.morsel_rows = 2048;
  AdaptiveOptions options;
  options.rotate = true;
  options.chunk_morsels = 1;
  AdaptiveAggregator<MedianAggregate> adaptive(keys.size(), exec, options);
  adaptive.Build(keys.data(), values.data(), keys.size());
  auto result = adaptive.Iterate();
  SortByKey(result);

  EXPECT_GE(adaptive.strategy_switches(), 5u);
  ASSERT_EQ(result.size(), baseline.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].key, baseline[i].key);
    EXPECT_DOUBLE_EQ(result[i].value, baseline[i].value);
  }
}

// --- Decision plumbing: stats, trace, and the L3-crossing switch. ---

TEST(AdaptiveTest, CrossingTheCacheThresholdTriggersASwitch) {
  // All-distinct keys: the working set grows with every morsel and blows
  // far past the (artificially small) configured L3, so the cost model must
  // abandon the sampling strategy at least once.
  const size_t n = 1 << 20;
  DatasetSpec spec{Distribution::kRseqShuffled, n, n, 85};
  const auto keys = GenerateKeys(spec);

  ExecutionContext exec{4};
  AdaptiveOptions options;
  options.l3_bytes = 256 * 1024;  // Deterministic regardless of host cache.
  AdaptiveAggregator<CountAggregate> adaptive(n, exec, options);
  adaptive.Build(keys.data(), nullptr, n);
  auto result = adaptive.Iterate();
  EXPECT_EQ(result.size(), CountDistinct(keys));

  EXPECT_GE(adaptive.strategy_switches(), 1u);
  EXPECT_NE(adaptive.switch_trace().find("->"), std::string::npos);

  QueryStats stats;
  adaptive.CollectStats(&stats);
  EXPECT_GE(stats.Get(StatCounter::kStrategySwitches), 1u);
  EXPECT_GT(stats.Get(StatCounter::kRowsMigrated), 0u);
  EXPECT_GT(stats.Get(StatCounter::kAdaptiveStrategy), 0u);
}

TEST(AdaptiveTest, LowCardinalityNeverNeedsToSwitch) {
  // 64 groups fit in any cache: the sampling strategy is already the right
  // one and the margin test must keep it.
  DatasetSpec spec{Distribution::kRseqShuffled, 200000, 64, 86};
  const auto keys = GenerateKeys(spec);
  ExecutionContext exec{4};
  AdaptiveAggregator<CountAggregate> adaptive(keys.size(), exec);
  adaptive.Build(keys.data(), nullptr, keys.size());
  auto result = adaptive.Iterate();
  EXPECT_EQ(result.size(), 64u);
  EXPECT_EQ(adaptive.strategy_switches(), 0u);
  EXPECT_EQ(adaptive.switch_trace(), "local-central@0");
}

TEST(AdaptiveTest, EmptyInputYieldsEmptyResult) {
  AdaptiveAggregator<SumAggregate> adaptive(0, ExecutionContext{1});
  adaptive.Build(nullptr, nullptr, 0);
  EXPECT_TRUE(adaptive.Iterate().empty());
  EXPECT_EQ(adaptive.strategy_switches(), 0u);
}

TEST(AdaptiveTest, ForceStrategyPinsTheChoice) {
  DatasetSpec spec{Distribution::kRseqShuffled, 50000, 1000, 87};
  const auto keys = GenerateKeys(spec);
  ExecutionContext exec{2};
  exec.morsel_rows = 1024;
  AdaptiveOptions options;
  options.force_strategy = static_cast<int>(AggStrategy::kSharedMap);
  AdaptiveAggregator<CountAggregate> adaptive(keys.size(), exec, options);
  adaptive.Build(keys.data(), nullptr, keys.size());
  EXPECT_EQ(adaptive.Iterate().size(), CountDistinct(keys));
  EXPECT_EQ(adaptive.strategy_switches(), 0u);
  EXPECT_EQ(adaptive.current_strategy(), AggStrategy::kSharedMap);
  EXPECT_EQ(adaptive.switch_trace(), "shared-map@0");
}

// --- Engine and experiment integration. ---

TEST(AdaptiveTest, EngineLabelMatchesReference) {
  DatasetSpec spec{Distribution::kZipf, 100000, 10000, 88};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000, 89);
  auto expected = ReferenceVectorAggregate(keys, values,
                                           AggregateFunction::kSum);
  SortByKey(expected);
  for (int threads : {1, 4}) {
    auto execution = ExecuteVectorQuery("Adaptive", AggregateFunction::kSum,
                                        keys.data(), values.data(),
                                        keys.size(), keys.size(),
                                        ExecutionContext{threads});
    SortByKey(execution.result);
    ASSERT_EQ(execution.result.size(), expected.size()) << threads;
    for (size_t i = 0; i < execution.result.size(); ++i) {
      EXPECT_EQ(execution.result[i].key, expected[i].key) << threads;
      EXPECT_DOUBLE_EQ(execution.result[i].value, expected[i].value)
          << threads;
    }
    EXPECT_GT(execution.stats.Get(StatCounter::kAdaptiveStrategy), 0u)
        << threads;
  }
}

TEST(AdaptiveTest, AutoResolvesToAdaptiveForVectorQueries) {
  ExperimentConfig config;
  config.query = MakeQ1();
  config.dataset = DatasetSpec{Distribution::kRseqShuffled, 100000, 1000, 90};
  config.algorithm = "auto";
  config.num_threads = 2;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.algorithm, "Adaptive");
  EXPECT_EQ(result.num_groups, 1000u);
}

TEST(AdaptiveTest, AutoKeepsStaticAdviceForRangeQueries) {
  ExperimentConfig config;
  config.query = MakeQ7();  // Range condition: needs ordered iteration.
  config.dataset = DatasetSpec{Distribution::kRseqShuffled, 50000, 1000, 91};
  config.algorithm = "auto";
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.algorithm, "ART");
}

}  // namespace
}  // namespace memagg
