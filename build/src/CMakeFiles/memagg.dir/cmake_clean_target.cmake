file(REMOVE_RECURSE
  "libmemagg.a"
)
