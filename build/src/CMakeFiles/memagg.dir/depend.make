# Empty dependencies file for memagg.
# This may be replaced when dependencies are built.
