file(REMOVE_RECURSE
  "CMakeFiles/memagg.dir/core/advisor.cc.o"
  "CMakeFiles/memagg.dir/core/advisor.cc.o.d"
  "CMakeFiles/memagg.dir/core/engine.cc.o"
  "CMakeFiles/memagg.dir/core/engine.cc.o.d"
  "CMakeFiles/memagg.dir/core/experiment.cc.o"
  "CMakeFiles/memagg.dir/core/experiment.cc.o.d"
  "CMakeFiles/memagg.dir/core/groupby.cc.o"
  "CMakeFiles/memagg.dir/core/groupby.cc.o.d"
  "CMakeFiles/memagg.dir/data/dataset.cc.o"
  "CMakeFiles/memagg.dir/data/dataset.cc.o.d"
  "CMakeFiles/memagg.dir/data/zipf.cc.o"
  "CMakeFiles/memagg.dir/data/zipf.cc.o.d"
  "CMakeFiles/memagg.dir/sim/cache_model.cc.o"
  "CMakeFiles/memagg.dir/sim/cache_model.cc.o.d"
  "CMakeFiles/memagg.dir/sim/sim_tracer.cc.o"
  "CMakeFiles/memagg.dir/sim/sim_tracer.cc.o.d"
  "CMakeFiles/memagg.dir/sim/traced_engine.cc.o"
  "CMakeFiles/memagg.dir/sim/traced_engine.cc.o.d"
  "CMakeFiles/memagg.dir/util/cli.cc.o"
  "CMakeFiles/memagg.dir/util/cli.cc.o.d"
  "CMakeFiles/memagg.dir/util/memory_tracker.cc.o"
  "CMakeFiles/memagg.dir/util/memory_tracker.cc.o.d"
  "CMakeFiles/memagg.dir/util/perf_counters.cc.o"
  "CMakeFiles/memagg.dir/util/perf_counters.cc.o.d"
  "CMakeFiles/memagg.dir/util/prime.cc.o"
  "CMakeFiles/memagg.dir/util/prime.cc.o.d"
  "libmemagg.a"
  "libmemagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
