
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/memagg.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/memagg.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/memagg.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/memagg.dir/core/engine.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/memagg.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/memagg.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/groupby.cc" "src/CMakeFiles/memagg.dir/core/groupby.cc.o" "gcc" "src/CMakeFiles/memagg.dir/core/groupby.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/memagg.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/memagg.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/zipf.cc" "src/CMakeFiles/memagg.dir/data/zipf.cc.o" "gcc" "src/CMakeFiles/memagg.dir/data/zipf.cc.o.d"
  "/root/repo/src/sim/cache_model.cc" "src/CMakeFiles/memagg.dir/sim/cache_model.cc.o" "gcc" "src/CMakeFiles/memagg.dir/sim/cache_model.cc.o.d"
  "/root/repo/src/sim/sim_tracer.cc" "src/CMakeFiles/memagg.dir/sim/sim_tracer.cc.o" "gcc" "src/CMakeFiles/memagg.dir/sim/sim_tracer.cc.o.d"
  "/root/repo/src/sim/traced_engine.cc" "src/CMakeFiles/memagg.dir/sim/traced_engine.cc.o" "gcc" "src/CMakeFiles/memagg.dir/sim/traced_engine.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/memagg.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/memagg.dir/util/cli.cc.o.d"
  "/root/repo/src/util/memory_tracker.cc" "src/CMakeFiles/memagg.dir/util/memory_tracker.cc.o" "gcc" "src/CMakeFiles/memagg.dir/util/memory_tracker.cc.o.d"
  "/root/repo/src/util/perf_counters.cc" "src/CMakeFiles/memagg.dir/util/perf_counters.cc.o" "gcc" "src/CMakeFiles/memagg.dir/util/perf_counters.cc.o.d"
  "/root/repo/src/util/prime.cc" "src/CMakeFiles/memagg.dir/util/prime.cc.o" "gcc" "src/CMakeFiles/memagg.dir/util/prime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
