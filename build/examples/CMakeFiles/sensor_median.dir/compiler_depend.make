# Empty compiler generated dependencies file for sensor_median.
# This may be replaced when dependencies are built.
