file(REMOVE_RECURSE
  "CMakeFiles/sensor_median.dir/sensor_median.cc.o"
  "CMakeFiles/sensor_median.dir/sensor_median.cc.o.d"
  "sensor_median"
  "sensor_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
