file(REMOVE_RECURSE
  "CMakeFiles/tpch_pricing.dir/tpch_pricing.cc.o"
  "CMakeFiles/tpch_pricing.dir/tpch_pricing.cc.o.d"
  "tpch_pricing"
  "tpch_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
