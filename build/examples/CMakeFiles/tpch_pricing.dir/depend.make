# Empty dependencies file for tpch_pricing.
# This may be replaced when dependencies are built.
