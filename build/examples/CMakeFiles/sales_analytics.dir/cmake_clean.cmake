file(REMOVE_RECURSE
  "CMakeFiles/sales_analytics.dir/sales_analytics.cc.o"
  "CMakeFiles/sales_analytics.dir/sales_analytics.cc.o.d"
  "sales_analytics"
  "sales_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
