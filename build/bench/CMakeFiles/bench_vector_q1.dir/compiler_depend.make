# Empty compiler generated dependencies file for bench_vector_q1.
# This may be replaced when dependencies are built.
