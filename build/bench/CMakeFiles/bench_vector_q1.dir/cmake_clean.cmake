file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_q1.dir/bench_vector_q1.cc.o"
  "CMakeFiles/bench_vector_q1.dir/bench_vector_q1.cc.o.d"
  "bench_vector_q1"
  "bench_vector_q1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_q1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
