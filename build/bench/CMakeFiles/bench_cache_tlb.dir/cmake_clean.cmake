file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_tlb.dir/bench_cache_tlb.cc.o"
  "CMakeFiles/bench_cache_tlb.dir/bench_cache_tlb.cc.o.d"
  "bench_cache_tlb"
  "bench_cache_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
