# Empty dependencies file for bench_cache_tlb.
# This may be replaced when dependencies are built.
