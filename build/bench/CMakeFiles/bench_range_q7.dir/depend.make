# Empty dependencies file for bench_range_q7.
# This may be replaced when dependencies are built.
