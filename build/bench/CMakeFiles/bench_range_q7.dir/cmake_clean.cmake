file(REMOVE_RECURSE
  "CMakeFiles/bench_range_q7.dir/bench_range_q7.cc.o"
  "CMakeFiles/bench_range_q7.dir/bench_range_q7.cc.o.d"
  "bench_range_q7"
  "bench_range_q7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_q7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
