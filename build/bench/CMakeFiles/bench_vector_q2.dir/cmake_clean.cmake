file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_q2.dir/bench_vector_q2.cc.o"
  "CMakeFiles/bench_vector_q2.dir/bench_vector_q2.cc.o.d"
  "bench_vector_q2"
  "bench_vector_q2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_q2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
