# Empty compiler generated dependencies file for bench_vector_q2.
# This may be replaced when dependencies are built.
