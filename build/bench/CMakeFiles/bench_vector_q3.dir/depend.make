# Empty dependencies file for bench_vector_q3.
# This may be replaced when dependencies are built.
