file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_q3.dir/bench_vector_q3.cc.o"
  "CMakeFiles/bench_vector_q3.dir/bench_vector_q3.cc.o.d"
  "bench_vector_q3"
  "bench_vector_q3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_q3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
