# Empty dependencies file for bench_scalar_q6.
# This may be replaced when dependencies are built.
