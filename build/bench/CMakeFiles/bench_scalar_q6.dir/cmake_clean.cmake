file(REMOVE_RECURSE
  "CMakeFiles/bench_scalar_q6.dir/bench_scalar_q6.cc.o"
  "CMakeFiles/bench_scalar_q6.dir/bench_scalar_q6.cc.o.d"
  "bench_scalar_q6"
  "bench_scalar_q6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalar_q6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
