file(REMOVE_RECURSE
  "CMakeFiles/bench_ds_micro.dir/bench_ds_micro.cc.o"
  "CMakeFiles/bench_ds_micro.dir/bench_ds_micro.cc.o.d"
  "bench_ds_micro"
  "bench_ds_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ds_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
