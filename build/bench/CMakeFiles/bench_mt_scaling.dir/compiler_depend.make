# Empty compiler generated dependencies file for bench_mt_scaling.
# This may be replaced when dependencies are built.
