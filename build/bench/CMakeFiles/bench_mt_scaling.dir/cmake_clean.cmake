file(REMOVE_RECURSE
  "CMakeFiles/bench_mt_scaling.dir/bench_mt_scaling.cc.o"
  "CMakeFiles/bench_mt_scaling.dir/bench_mt_scaling.cc.o.d"
  "bench_mt_scaling"
  "bench_mt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
