file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_sort.dir/bench_parallel_sort.cc.o"
  "CMakeFiles/bench_parallel_sort.dir/bench_parallel_sort.cc.o.d"
  "bench_parallel_sort"
  "bench_parallel_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
