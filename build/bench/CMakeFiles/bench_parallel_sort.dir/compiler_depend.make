# Empty compiler generated dependencies file for bench_parallel_sort.
# This may be replaced when dependencies are built.
