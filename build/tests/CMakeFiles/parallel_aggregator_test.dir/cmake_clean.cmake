file(REMOVE_RECURSE
  "CMakeFiles/parallel_aggregator_test.dir/parallel_aggregator_test.cc.o"
  "CMakeFiles/parallel_aggregator_test.dir/parallel_aggregator_test.cc.o.d"
  "parallel_aggregator_test"
  "parallel_aggregator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
