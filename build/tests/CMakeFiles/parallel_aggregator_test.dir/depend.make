# Empty dependencies file for parallel_aggregator_test.
# This may be replaced when dependencies are built.
