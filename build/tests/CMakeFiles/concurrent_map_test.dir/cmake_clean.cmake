file(REMOVE_RECURSE
  "CMakeFiles/concurrent_map_test.dir/concurrent_map_test.cc.o"
  "CMakeFiles/concurrent_map_test.dir/concurrent_map_test.cc.o.d"
  "concurrent_map_test"
  "concurrent_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
