# Empty compiler generated dependencies file for concurrent_map_test.
# This may be replaced when dependencies are built.
