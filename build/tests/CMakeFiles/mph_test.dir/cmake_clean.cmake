file(REMOVE_RECURSE
  "CMakeFiles/mph_test.dir/mph_test.cc.o"
  "CMakeFiles/mph_test.dir/mph_test.cc.o.d"
  "mph_test"
  "mph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
