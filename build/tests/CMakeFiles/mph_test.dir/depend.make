# Empty dependencies file for mph_test.
# This may be replaced when dependencies are built.
