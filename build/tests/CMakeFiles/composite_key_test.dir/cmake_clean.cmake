file(REMOVE_RECURSE
  "CMakeFiles/composite_key_test.dir/composite_key_test.cc.o"
  "CMakeFiles/composite_key_test.dir/composite_key_test.cc.o.d"
  "composite_key_test"
  "composite_key_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
