# Empty dependencies file for composite_key_test.
# This may be replaced when dependencies are built.
