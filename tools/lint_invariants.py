#!/usr/bin/env python3
"""Repo-invariant linter: concurrency and hygiene rules the compiler cannot see.

The Clang thread-safety annotations (src/util/thread_annotations.h) check
lock protocols; clang-tidy checks general bug patterns. This linter covers
the repo-specific discipline that neither can express:

  raw-thread           std::thread may only be constructed under src/exec/
                       (the morsel-driven execution layer owns all threads;
                       everything else submits to TaskGroup/Executor).
                       std::thread::hardware_concurrency and std::this_thread
                       are fine anywhere.
  libc-rand            rand()/srand()/std::rand are banned everywhere: they
                       share hidden global state across threads and wreck
                       benchmark reproducibility. Use util/rng.h (Rng).
  stats-in-morsel-body stats recording (StatCounter::, PhaseTimer, AddPhase,
                       WorkerShard) must not appear inside a per-morsel
                       lambda (`[..](const Morsel& ..) {..}`): counters are
                       flushed once per worker per loop, never per row or
                       per morsel, so MEMAGG_STATS=ON stays cost-free on the
                       hot path.
  unguarded-global     a mutable namespace-scope global (g_ prefix, or an
                       extern declaration of one) must be std::atomic,
                       const, or carry a GUARDED_BY annotation — otherwise
                       it needs an explicit waiver explaining why it is safe.
  include-guard        headers under src/ use include guards derived from
                       their path: src/hash/cuckoo_map.h guards with
                       MEMAGG_HASH_CUCKOO_MAP_H_.
  raw-node-alloc       node-based structures (src/hash/, src/tree/) must
                       allocate nodes through their Alloc policy
                       (mem/allocator.h), never raw new/delete or
                       ::operator new/delete — otherwise the arena ablation
                       silently measures the wrong allocator. Placement new
                       and `= delete`d members are fine.
  fixed-aggregator-construction
                       library/bench/example code may not construct a fixed
                       aggregator template (HashAggregator<...>,
                       LocalPartitionAggregator<...>, ...) directly: operator
                       choice flows through the engine factory
                       (MakeVectorAggregator) or the adaptive operator
                       (AdaptiveAggregator), so strategy selection stays in
                       one place. The factory (core/engine.cc,
                       sim/traced_engine.cc) and the family headers
                       themselves (src/core/*_aggregator.h, which compose
                       sub-operators) are exempt; tests construct families
                       directly to unit-test them.
  raw-simd-intrinsic   x86 vector intrinsics (_mm*_*, __m128/__m256/__m512)
                       may only appear under src/util/simd* — every other
                       file goes through the SimdOps lanes so the scalar/
                       sse42/avx2 ablation and the -mno-avx2 CI job stay
                       meaningful. _mm_pause in spinlock.h carries a waiver:
                       it is a scheduling hint, not a data kernel.
  raw-key-type         key-typed declarations in the key-consuming layers
                       (src/hash/, src/tree/, src/core/, bench/) must use
                       the EncodedKey alias (util/encoded_key.h), not raw
                       `uint64_t key` — the alias is the single place the
                       encoded key width is defined, so codec refactors
                       (data/key_codec.h packs composite keys into it) stay
                       one-line. Derived names (key_count, keys) and other
                       uint64_t values are fine; legacy paper benches carry
                       waivers.
  ref-capture-in-task  a lambda submitted to a task group or pool
                       (`.Submit([&]...` / `.Schedule([&]...`) may not use a
                       default by-reference capture: tasks outlive statements,
                       so every captured local must be named (visible in the
                       capture list, where astlint's morsel-capture dataflow
                       rule checks it against a dominating Wait()) or taken
                       by value.
  unconstrained-typename
                       headers under src/core/ may not declare bare
                       `template <typename X>` / `template <class X>`
                       parameters: the operator layer is where every
                       pluggable role has a named contract, so parameters
                       must use a concept (core/concepts.h, mem/allocator.h,
                       util/tracer.h) or carry a waiver. Concept definitions
                       themselves, core/concepts.h, non-type parameters, and
                       the inner `<typename>` of a template-template
                       parameter are exempt.

Waivers: append `// lint:allow(rule-name): reason` to the offending line or
the line directly above it. The reason is mandatory by convention — a waiver
is a documented decision, not an off switch.

Usage:
  tools/lint_invariants.py              lint the repo (exit 1 on violations)
  tools/lint_invariants.py --self-test  run the rule fixtures
Both are registered with ctest (lint_invariants, lint_invariants_selftest).
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories scanned per rule. Tests deliberately spawn raw std::thread to
# hammer the concurrent structures from outside the execution layer, so the
# thread and morsel rules stop at library + bench + example code.
LIBRARY_DIRS = ("src", "bench", "examples")
ALL_DIRS = ("src", "bench", "examples", "tests")

WAIVER_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")


def source_files(dirs):
    for d in dirs:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc"):
                yield path.relative_to(REPO)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line breaks
    so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_waivers(text):
    """Maps 1-based line number -> set of waived rules. A waiver covers its
    own line and the next line (for waiver-above-the-offender style)."""
    waived = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in WAIVER_RE.finditer(line):
            rule = match.group(1)
            waived.setdefault(lineno, set()).add(rule)
            waived.setdefault(lineno + 1, set()).add(rule)
    return waived


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_brace_span(text, open_brace):
    """Returns the offset one past the brace matching text[open_brace]."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# --- Rules -------------------------------------------------------------------

RAW_THREAD_RE = re.compile(r"(?<![\w:])std::thread\b(?!\s*::)")


def check_raw_thread(relpath, stripped):
    if str(relpath).startswith("src/exec/"):
        return
    for match in RAW_THREAD_RE.finditer(stripped):
        yield (
            line_of(stripped, match.start()),
            "raw-thread",
            "std::thread outside src/exec/ — submit work through "
            "TaskGroup/Executor instead",
        )


LIBC_RAND_RE = re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\(")


def check_libc_rand(relpath, stripped):
    del relpath
    for match in LIBC_RAND_RE.finditer(stripped):
        yield (
            line_of(stripped, match.start()),
            "libc-rand",
            "rand()/srand() share hidden global state — use util/rng.h",
        )


MORSEL_LAMBDA_RE = re.compile(r"\(\s*const\s+Morsel\s*&")
STATS_CALL_RE = re.compile(
    r"StatCounter::|PhaseTimer\b|\bAddPhase\s*\(|\bWorkerShard\s*\("
)


def check_stats_in_morsel_body(relpath, stripped):
    del relpath
    for match in MORSEL_LAMBDA_RE.finditer(stripped):
        open_brace = stripped.find("{", match.end())
        if open_brace == -1:
            continue
        body_end = match_brace_span(stripped, open_brace)
        for call in STATS_CALL_RE.finditer(stripped, open_brace, body_end):
            yield (
                line_of(stripped, call.start()),
                "stats-in-morsel-body",
                "stats recording inside a per-morsel lambda — accumulate "
                "locally and flush once per worker (see Executor::"
                "RecordWorkerClaims)",
            )


GLOBAL_DECL_RE = re.compile(
    r"^\s*(?:extern\s+)?[A-Za-z_][\w:]*[\w:<>,\s*&]*[*&\s]g_\w+\s*[=;{]"
)


def check_unguarded_global(relpath, stripped):
    if not str(relpath).startswith("src/"):
        return
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if not GLOBAL_DECL_RE.match(line):
            continue
        if re.search(r"\bconst\b|\bconstexpr\b|std::atomic|GUARDED_BY", line):
            continue
        yield (
            lineno,
            "unguarded-global",
            "mutable global without std::atomic/const/GUARDED_BY — "
            "annotate it or waive with a reason",
        )


# Allocating `new` (not placement `new (addr)`) and any `delete` that is not
# an `= delete`d member. ::operator new/delete is matched separately because
# `operator new(bytes)` looks like placement syntax to the first regex.
RAW_NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")
RAW_DELETE_RE = re.compile(r"(?<![\w:])delete\b")
RAW_OPERATOR_ALLOC_RE = re.compile(r"\boperator\s+(?:new|delete)\b")

NODE_STRUCTURE_PREFIXES = ("src/hash/", "src/tree/")


def check_raw_node_alloc(relpath, stripped):
    if not str(relpath).startswith(NODE_STRUCTURE_PREFIXES):
        return
    message = (
        "raw new/delete in a node-based structure — allocate through the "
        "Alloc policy (mem/allocator.h) so the arena ablation stays honest"
    )
    for match in RAW_NEW_RE.finditer(stripped):
        before = stripped[: match.start()].rstrip()
        if before.endswith("operator"):
            continue  # Reported by RAW_OPERATOR_ALLOC_RE below.
        line_start = stripped.rfind("\n", 0, match.start()) + 1
        if stripped[line_start:match.start()].lstrip().startswith("#"):
            continue  # `#include <new>` and friends.
        yield (line_of(stripped, match.start()), "raw-node-alloc", message)
    for match in RAW_DELETE_RE.finditer(stripped):
        before = stripped[: match.start()].rstrip()
        if before.endswith("=") or before.endswith("operator"):
            continue  # `= delete`d member / reported below.
        yield (line_of(stripped, match.start()), "raw-node-alloc", message)
    for match in RAW_OPERATOR_ALLOC_RE.finditer(stripped):
        yield (line_of(stripped, match.start()), "raw-node-alloc", message)


# Construction of a concrete aggregator template: heap (make_unique / new)
# or a stack/member object with arguments. `AdaptiveAggregator` is the
# sanctioned entry point, so it is excluded by name.
FIXED_AGG_CONSTRUCT_RE = re.compile(
    r"(?:std::make_unique\s*<\s*|new\s+)([A-Z]\w*Aggregator)\s*<"
    r"|\b([A-Z]\w*Aggregator)\s*<[\w:<>,\s]*>\s+\w+\s*[({]"
)
FIXED_AGG_EXEMPT_FILES = (
    "src/core/engine.cc",       # the MakeVectorAggregator factory
    "src/core/migratable.h",    # the migratable-state protocol itself
    "src/sim/traced_engine.cc", # traced mirror of the factory
)


def check_fixed_aggregator_construction(relpath, stripped):
    posix = relpath.as_posix()
    if posix in FIXED_AGG_EXEMPT_FILES:
        return
    if posix.startswith("src/core/") and posix.endswith("_aggregator.h"):
        return  # Family headers compose their own sub-operators.
    for match in FIXED_AGG_CONSTRUCT_RE.finditer(stripped):
        name = match.group(1) or match.group(2)
        if name == "AdaptiveAggregator":
            continue
        yield (
            line_of(stripped, match.start()),
            "fixed-aggregator-construction",
            f"direct construction of {name} — route operator choice "
            "through MakeVectorAggregator (core/engine.h) or "
            "AdaptiveAggregator so strategy selection stays in one place",
        )


REF_CAPTURE_TASK_RE = re.compile(
    r"(?:\.|->)\s*(?:Submit|Schedule)\s*\(\s*\[\s*&\s*[,\]]"
)


def check_ref_capture_in_task(relpath, stripped):
    del relpath
    for match in REF_CAPTURE_TASK_RE.finditer(stripped):
        yield (
            line_of(stripped, match.start()),
            "ref-capture-in-task",
            "default [&] capture in a submitted task — name every captured "
            "local (or capture by value) so the morsel-capture dataflow "
            "rule can check each one against a dominating Wait()",
        )


RAW_SIMD_RE = re.compile(r"\b(?:_mm\d*_\w+|__m(?:128|256|512)\w*)\b")


def check_raw_simd_intrinsic(relpath, stripped):
    if relpath.as_posix().startswith("src/util/simd"):
        return
    for match in RAW_SIMD_RE.finditer(stripped):
        yield (
            line_of(stripped, match.start()),
            "raw-simd-intrinsic",
            f"raw vector intrinsic {match.group(0)} outside src/util/simd* "
            "— add a kernel to the SimdOps lanes so the lane ablation "
            "covers it",
        )


RAW_KEY_TYPE_RE = re.compile(r"\buint64_t\s+key_?\b")
KEY_LAYER_PREFIXES = ("src/hash/", "src/tree/", "src/core/", "bench/")


def check_raw_key_type(relpath, stripped):
    if not relpath.as_posix().startswith(KEY_LAYER_PREFIXES):
        return
    for match in RAW_KEY_TYPE_RE.finditer(stripped):
        yield (
            line_of(stripped, match.start()),
            "raw-key-type",
            "raw `uint64_t key` in a key-consuming layer — use EncodedKey "
            "(util/encoded_key.h) so the encoded key width stays defined "
            "in one place",
        )


TEMPLATE_INTRO_RE = re.compile(r"\btemplate\s*<")
TYPE_PARAM_RE = re.compile(r"^\s*(typename|class)\b")


def split_template_params(stripped, open_angle):
    """Splits the template parameter list opening at stripped[open_angle]
    ('<') into top-level parameters. Returns (params, end_offset) where each
    param is (text, start_offset), or (None, open_angle) if unbalanced.
    Tracks <> and () depth so template-template parameters and defaults like
    `KeyOf = PairFirstKey` with nested angles stay one parameter."""
    params = []
    depth_angle, depth_paren = 1, 0
    start = open_angle + 1
    i = start
    while i < len(stripped):
        c = stripped[i]
        if c == "<":
            depth_angle += 1
        elif c == ">":
            depth_angle -= 1
            if depth_angle == 0:
                params.append((stripped[start:i], start))
                return params, i
        elif c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c == "," and depth_angle == 1 and depth_paren == 0:
            params.append((stripped[start:i], start))
            start = i + 1
        i += 1
    return None, open_angle


def check_unconstrained_typename(relpath, stripped):
    posix = relpath.as_posix()
    if not posix.startswith("src/core/") or relpath.suffix != ".h":
        return
    if relpath.name == "concepts.h":
        return  # The vocabulary itself is built from bare typenames.
    consumed_until = 0
    for match in TEMPLATE_INTRO_RE.finditer(stripped):
        if match.start() < consumed_until:
            continue  # inner `template <typename>` of a template-template
        open_angle = stripped.index("<", match.start())
        params, end = split_template_params(stripped, open_angle)
        consumed_until = end
        if params is None:
            continue
        # A concept definition's parameters are the thing being constrained.
        if stripped[end + 1:end + 40].lstrip().startswith("concept"):
            continue
        for text, offset in params:
            if TYPE_PARAM_RE.match(text):
                yield (
                    line_of(stripped, offset + len(text) - len(text.lstrip())),
                    "unconstrained-typename",
                    "bare typename/class template parameter in a core "
                    "header — constrain it with a concept "
                    "(core/concepts.h) or waive with a reason",
                )


def expected_guard(relpath):
    tail = Path(*relpath.parts[1:])  # drop leading src/
    token = re.sub(r"[^A-Za-z0-9]", "_", str(tail)).upper()
    return f"MEMAGG_{token}_"


def check_include_guard(relpath, stripped):
    if relpath.suffix != ".h" or relpath.parts[0] != "src":
        return
    want = expected_guard(relpath)
    ifndef = re.search(r"^#ifndef\s+(\S+)", stripped, re.MULTILINE)
    if ifndef is None:
        yield (1, "include-guard", f"missing include guard (expected {want})")
        return
    got = ifndef.group(1)
    if got != want:
        yield (
            line_of(stripped, ifndef.start()),
            "include-guard",
            f"include guard {got} does not match path (expected {want})",
        )
    elif not re.search(rf"^#define\s+{re.escape(want)}\s*$", stripped,
                       re.MULTILINE):
        yield (
            line_of(stripped, ifndef.start()),
            "include-guard",
            f"#ifndef {want} has no matching #define",
        )


RULES = (
    (LIBRARY_DIRS, check_raw_thread),
    (ALL_DIRS, check_libc_rand),
    (LIBRARY_DIRS, check_stats_in_morsel_body),
    (LIBRARY_DIRS, check_unguarded_global),
    (LIBRARY_DIRS, check_include_guard),
    (LIBRARY_DIRS, check_raw_node_alloc),
    (LIBRARY_DIRS, check_ref_capture_in_task),
    (ALL_DIRS, check_raw_simd_intrinsic),
    (LIBRARY_DIRS, check_raw_key_type),
    (LIBRARY_DIRS, check_unconstrained_typename),
    (LIBRARY_DIRS, check_fixed_aggregator_construction),
)


def waiver_sites(text):
    """Yields (lineno, rule) for each waiver comment at its own line (the
    coverage map from collect_waivers also spans the next line)."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in WAIVER_RE.finditer(line):
            yield lineno, match.group(1)


def lint_text(relpath, text, dirs_of_file):
    """Runs every applicable rule over one file's text. Returns a list of
    (relpath, lineno, rule, message), waivers already applied. A waiver
    whose rule fires on neither of its covered lines has outlived the code
    it excused and is itself reported (rule `stale-waiver`)."""
    stripped = strip_comments_and_strings(text)
    waived = collect_waivers(text)
    raw = []
    for dirs, rule_fn in RULES:
        if relpath.parts[0] not in dirs or relpath.parts[0] not in dirs_of_file:
            continue
        raw.extend(rule_fn(relpath, stripped))
    raw_sites = {(lineno, rule) for lineno, rule, _ in raw}
    for lineno, rule in waiver_sites(text):
        if rule == "stale-waiver":
            continue  # Meta-waiver; used by definition of what it covers.
        if (lineno, rule) not in raw_sites and \
                (lineno + 1, rule) not in raw_sites:
            raw.append((
                lineno,
                "stale-waiver",
                f"waiver for '{rule}' covers no line where that rule still "
                "fires — the excused code is gone, remove the waiver",
            ))
    violations = []
    for lineno, rule, message in raw:
        if rule in waived.get(lineno, ()):
            continue
        violations.append((relpath, lineno, rule, message))
    return violations


def lint_repo():
    violations = []
    for relpath in source_files(ALL_DIRS):
        text = (REPO / relpath).read_text(encoding="utf-8")
        violations.extend(lint_text(relpath, text, ALL_DIRS))
    for relpath, lineno, rule, message in violations:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    if violations:
        print(f"\n{len(violations)} violation(s). Waive intentional cases "
              "with `// lint:allow(rule): reason`.")
        return 1
    print(f"lint_invariants: clean ({sum(1 for _ in source_files(ALL_DIRS))} "
          "files)")
    return 0


# --- Self-test ---------------------------------------------------------------

# Each fixture: (rule, path the snippet pretends to live at, bad snippet that
# must fire exactly once, good snippet that must stay clean). The waiver form
# of every bad snippet must also stay clean.
FIXTURES = [
    (
        "raw-thread",
        "src/core/widget.cc",
        "void f() { std::thread t([]{}); t.join(); }\n",
        "void f() { unsigned n = std::thread::hardware_concurrency();\n"
        "  std::this_thread::yield(); (void)n; }\n",
    ),
    (
        "raw-thread",
        "src/exec/thread_pool.cc",  # exec layer owns threads: never fires
        "",
        "void f() { std::thread t([]{}); t.join(); }\n",
    ),
    (
        "libc-rand",
        "bench/micro.cc",
        "int f() { return std::rand(); }\n",
        "int f(Rng& rng) { return rng.Next(); }  // NextBounded(rand_max)\n",
    ),
    (
        "stats-in-morsel-body",
        "src/core/widget.h",
        "void f() { exec.ParallelFor(n, [&](const Morsel& m) {\n"
        "  stats->Add(StatCounter::kRows, m.end - m.begin); }); }\n",
        "void f() { exec.ParallelFor(n, [&](const Morsel& m) { use(m); });\n"
        "  stats->Add(StatCounter::kRows, n); }\n",
    ),
    (
        "unguarded-global",
        "src/core/widget.cc",
        "Widget* g_widget = nullptr;\n",
        "std::atomic<Widget*> g_widget{nullptr};\n"
        "constexpr int g_limit = 3;\n"
        "void f() { local::g_widget = nullptr; }\n",
    ),
    (
        "raw-node-alloc",
        "src/hash/widget.h",
        "void f() { Node* n = new Node(); use(n); }\n",
        "struct W {\n"
        "  W(const W&) = delete;\n"
        "  W& operator=(const W&) = delete;\n"
        "  void f(void* mem) { ::new (mem) Node(); }\n"
        "  void g() { auto p = std::make_unique<Node>(); new_count_++; }\n"
        "};\n",
    ),
    (
        "raw-node-alloc",
        "src/core/widget.cc",  # only node-based structure dirs are scanned
        "",
        "void f() { Node* n = new Node(); delete n; }\n",
    ),
    (
        "ref-capture-in-task",
        "src/core/widget.cc",
        "void f(TaskGroup& group) {\n"
        "  int n = 0; group.Submit([&] { n++; }); group.Wait(); }\n",
        "void f(TaskGroup& group) {\n"
        "  int n = 0; group.Submit([&n] { n++; }); group.Wait();\n"
        "  group.Submit([n] { use(n); }); group.Wait();\n"
        "  auto body = [&] { n++; }; body(); }\n",
    ),
    (
        "raw-simd-intrinsic",
        "src/hash/widget.h",
        "uint32_t f(const uint8_t* g) {\n"
        "  return _mm_movemask_epi8(LoadGroup(g)); }\n",
        "uint32_t f(const uint8_t* g) {\n"
        "  return simd::DispatchOps::MatchEmpty(g); }\n",
    ),
    (
        "raw-simd-intrinsic",
        "src/util/simd_widen.h",  # the lane implementation layer is exempt
        "",
        "__m256i f(const uint8_t* g) {\n"
        "  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g)); }\n",
    ),
    (
        "include-guard",
        "src/core/widget.h",
        "#ifndef WIDGET_H\n#define WIDGET_H\n#endif\n",
        "#ifndef MEMAGG_CORE_WIDGET_H_\n#define MEMAGG_CORE_WIDGET_H_\n"
        "#endif  // MEMAGG_CORE_WIDGET_H_\n",
    ),
    (
        "fixed-aggregator-construction",
        "bench/micro.cc",
        "void f() { auto a =\n"
        "  std::make_unique<HashAggregator<CountAggregate>>(64); use(a); }\n",
        "void f() { auto a = MakeVectorAggregator(\"Hash_LP\",\n"
        "    AggregateFunction::kCount, 64, exec);\n"
        "  auto b = std::make_unique<AdaptiveAggregator<CountAggregate>>(\n"
        "    64, exec, options);\n"
        "  std::unique_ptr<VectorAggregator> held = std::move(a); }\n",
    ),
    (
        "fixed-aggregator-construction",
        "bench/micro.cc",
        "void f() { LocalPartitionAggregator<CountAggregate> agg(64, exec);\n"
        "  agg.Build(nullptr, nullptr, 0); }\n",
        "void g(LocalPartitionAggregator<CountAggregate>* op);\n"
        "void f(VectorAggregator* base) {\n"
        "  auto* h = static_cast<HybridVectorAggregator<CountAggregate>*>(\n"
        "      base); use(h); }\n",
    ),
    (
        "fixed-aggregator-construction",
        "src/core/engine.cc",  # the factory is where construction lives
        "",
        "std::unique_ptr<VectorAggregator> Make() {\n"
        "  return std::make_unique<RadixPartitionAggregator<CountAggregate>>(\n"
        "      64, exec); }\n",
    ),
    (
        "fixed-aggregator-construction",
        "src/core/hybrid_aggregator.h",  # family headers compose internally
        "",
        "void f() { hash_ = std::make_unique<HashAggregator<Agg>>(64); }\n",
    ),
    (
        "raw-key-type",
        "src/core/widget.h",
        "void Visit(uint64_t key, uint64_t value);\n",
        "void Visit(EncodedKey key, uint64_t value);\n"
        "uint64_t key_count = 0;\n"
        "void f(const std::vector<uint64_t>& keys);\n"
        "uint64_t value = 0;\n",
    ),
    (
        "raw-key-type",
        "src/data/widget.h",  # codec layer defines the packing: exempt
        "",
        "uint64_t key = Pack(fields);\n",
    ),
    (
        "unconstrained-typename",
        "src/core/widget.h",
        "template <typename Value>\nclass Widget { Value v_; };\n",
        "template <GroupMap Map>\nclass A { Map m_; };\n"
        "template <int kWays>\nclass B {};\n"
        "template <typename T>\nconcept Widgety = requires(T t) { t.Spin(); };\n"
        "template <template <typename> class MapT, AggregatePolicy Agg,\n"
        "          Sorter S = IntrosortSorter>\nclass C {};\n"
        "template <>\nclass B<2> {};\n",
    ),
    (
        "unconstrained-typename",
        "src/core/concepts.h",  # the vocabulary header itself is exempt
        "",
        "template <typename M, typename V>\nconcept Probe = true;\n"
        "template <typename V>\nstruct ProbeVisitor {};\n",
    ),
    (
        "unconstrained-typename",
        "src/hash/widget.h",  # only core headers carry the contract rule
        "",
        "template <typename Value>\nclass Widget { Value v_; };\n",
    ),
    (
        "stale-waiver",
        "src/core/widget.cc",
        # The waived rule (raw-thread) fires nowhere near the waiver: the
        # code it excused is gone, so the waiver itself is the violation.
        "// lint:allow(raw-thread): excuses code that was deleted\n"
        "int width = 0;\n",
        "// plain comment, no waiver\nint width = 0;\n",
    ),
]


def self_test():
    failures = []
    for rule, path, bad, good in FIXTURES:
        relpath = Path(path)
        if bad:
            hits = [v for v in lint_text(relpath, bad, ALL_DIRS)
                    if v[2] == rule]
            if len(hits) != 1:
                failures.append(
                    f"{rule} @ {path}: bad fixture fired {len(hits)}x, want 1")
            else:
                lines = bad.splitlines(keepends=True)
                lines.insert(hits[0][1] - 1, f"// lint:allow({rule}): fixture\n")
                waived = "".join(lines)
                if any(v[2] == rule
                       for v in lint_text(relpath, waived, ALL_DIRS)):
                    failures.append(f"{rule} @ {path}: waiver did not suppress")
        if any(v[2] == rule for v in lint_text(relpath, good, ALL_DIRS)):
            failures.append(f"{rule} @ {path}: good fixture fired")
    # Comment/string stripping must hide tokens from the rules.
    hidden = '// std::thread in a comment\nconst char* s = "std::rand()";\n'
    if lint_text(Path("src/core/widget.cc"), hidden, ALL_DIRS):
        failures.append("stripping: commented/quoted tokens fired")
    for failure in failures:
        print(f"SELF-TEST FAIL: {failure}")
    if failures:
        return 1
    print(f"lint_invariants --self-test: {len(FIXTURES)} fixtures OK")
    return 0


def list_waivers():
    """Prints every lint:allow waiver in the repo with its location and the
    comment text, marking stale ones (rule no longer fires there)."""
    total, stale_count = 0, 0
    for relpath in source_files(ALL_DIRS):
        text = (REPO / relpath).read_text(encoding="utf-8")
        stale_lines = {
            lineno for _, lineno, rule, _ in lint_text(relpath, text, ALL_DIRS)
            if rule == "stale-waiver"}
        lines = text.splitlines()
        for lineno, rule in waiver_sites(text):
            comment = lines[lineno - 1].strip()
            marker = " STALE" if lineno in stale_lines else ""
            print(f"{relpath}:{lineno}: [{rule}]{marker} {comment}")
            total += 1
            stale_count += lineno in stale_lines
    print(f"{total} waiver(s), {stale_count} stale")
    return 1 if stale_count else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule fixtures instead of linting")
    parser.add_argument("--list-waivers", action="store_true",
                        help="list every lint:allow waiver, marking stale "
                             "ones; exits non-zero if any are stale")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.list_waivers:
        return list_waivers()
    return lint_repo()


if __name__ == "__main__":
    sys.exit(main())
