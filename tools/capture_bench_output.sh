#!/usr/bin/env bash
# Captures one complete row set for every bench binary into bench_output.txt,
# at container-friendly sizes (full-scale CSVs live under results/).
set -uo pipefail
cd "$(dirname "$0")/.."
{
  echo "# memagg bench_output: every paper table/figure at reduced container"
  echo "# scale (see results/ for 4M/10M-record CSVs and EXPERIMENTS.md for"
  echo "# the paper-vs-measured analysis)."
  run() { echo; echo "===== $1 ====="; shift; "$@"; }
  run bench_sort_micro    build/bench/bench_sort_micro    --records=2M
  run bench_ds_micro      build/bench/bench_ds_micro      --records=2M
  run bench_vector_q1     build/bench/bench_vector_q1     --records=1M
  run bench_vector_q2     build/bench/bench_vector_q2     --records=1M
  run bench_vector_q3     build/bench/bench_vector_q3     --records=1M
  run bench_cache_tlb     build/bench/bench_cache_tlb     --records=500k
  run bench_memory        build/bench/bench_memory        --sizes=100k,1M
  run bench_distribution  build/bench/bench_distribution  --records=1M
  run bench_range_q7      build/bench/bench_range_q7      --records=1M
  run bench_scalar_q6     build/bench/bench_scalar_q6     --records=1M
  run bench_parallel_sort build/bench/bench_parallel_sort --records=2M --max_threads=4
  run bench_mt_scaling    build/bench/bench_mt_scaling    --records=1M --max_threads=4
  run bench_ablation      build/bench/bench_ablation      --records=1M
  run bench_primitives    build/bench/bench_primitives    --benchmark_min_time=0.05
} 2>&1 | tee bench_output.txt
