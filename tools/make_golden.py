#!/usr/bin/env python3
"""Maintain the committed golden files for validated benchmark workloads.

Today there is one golden: the TPC-H Q1-shaped workload over the columnar
Table layer (bench/bench_tpch_q1.cc, bench/golden/tpch_q1_r200000.txt).
The bench's measures are u64 fixed-point, so every operator family —
serial, parallel, and the adaptive operator at any thread count — must
reproduce the committed result byte for byte. This script is a thin driver
around the bench binary's --write-golden / --check-golden modes so the
regeneration recipe lives in one place and CI can gate on it.

Usage:
    make_golden.py --bench build/bench/bench_tpch_q1
        Regenerate bench/golden/tpch_q1_r200000.txt in place. Run after a
        deliberate change to the lineitem generator or the query shape, and
        commit the diff (an unexplained diff is a correctness bug: the
        fixed-point design makes results independent of execution order).

    make_golden.py --check --bench build/bench/bench_tpch_q1
        Re-run every family against the committed golden; exit 1 on any
        divergence. CI runs this under ASan; `ctest -R tpch_q1_golden`
        is the same check via the test suite.

Both modes accept --records/--seed/--golden to target a different file
(the golden file name encodes the record count, so non-default sizes
write alongside the committed one rather than over it).
"""

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_RECORDS = 200000
DEFAULT_SEED = 0x11E171


def default_golden_path(records):
    return os.path.join(REPO_ROOT, "bench", "golden",
                        f"tpch_q1_r{records}.txt")


def main():
    parser = argparse.ArgumentParser(
        description="Regenerate or check the TPC-H Q1 golden file.")
    parser.add_argument("--bench", required=True,
                        help="path to the built bench_tpch_q1 binary")
    parser.add_argument("--check", action="store_true",
                        help="validate every family against the golden "
                             "instead of regenerating it")
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--golden", default=None,
                        help="golden file path (default: "
                             "bench/golden/tpch_q1_r<records>.txt)")
    args = parser.parse_args()

    if not os.path.isfile(args.bench):
        raise SystemExit(f"error: bench binary not found: {args.bench}\n"
                         "build it first: cmake --build build "
                         "--target bench_tpch_q1")
    golden = args.golden or default_golden_path(args.records)

    mode = "--check-golden" if args.check else "--write-golden"
    if args.check and not os.path.isfile(golden):
        raise SystemExit(f"error: golden file not found: {golden}\n"
                         "regenerate it: make_golden.py --bench "
                         f"{args.bench}")
    if not args.check:
        os.makedirs(os.path.dirname(golden), exist_ok=True)

    command = [
        args.bench,
        f"--records={args.records}",
        f"--seed={args.seed}",
        f"{mode}={golden}",
    ]
    print("+", " ".join(command))
    result = subprocess.run(command, check=False)
    return result.returncode


if __name__ == "__main__":
    sys.exit(main())
