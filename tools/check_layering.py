#!/usr/bin/env python3
"""Include-layering analysis: enforce the module DAG over `#include` edges.

The repo is layered so any structure can be swapped without dragging the
operator layer (or anything above it) into lower-level headers:

    util  <-  mem  <-  obs  <-  exec  <-  {data, sort}  <-  {hash, tree}
          <-  core  <-  sim  <-  {bench, tests, examples}

Concretely, MODULE_DEPS below lists, for every module under src/, the set of
modules its files may include from. Anything else is a back-edge. The checker
parses every quoted `#include "module/..."` in src/, bench/, tests/, and
examples/, reports each violation with file:line, and additionally runs a
cycle detection pass over the *observed* module graph (a cycle means
MODULE_DEPS itself has rotted or two modules grew a mutual dependency).

Usage:
  tools/check_layering.py              # check the repo (exit 1 on violations)
  tools/check_layering.py --self-test  # run the planted-violation fixtures

Registered in ctest (check_layering, check_layering_selftest) and the CI
`layering` job. No dependencies beyond the standard library.
"""

import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# module -> set of modules its files may #include from (besides itself).
# Keep in sync with the DAG diagram in docs/static_analysis.md.
MODULE_DEPS = {
    "util": set(),
    "mem": {"util"},
    "obs": {"util", "mem"},
    "exec": {"util", "mem", "obs"},
    "data": {"util"},
    "sort": {"util", "mem", "obs", "exec"},
    "hash": {"util", "mem", "obs", "exec", "sort"},
    "tree": {"util", "mem", "obs", "exec", "sort"},
    "core": {"util", "mem", "obs", "exec", "data", "sort", "hash", "tree"},
    "sim": {"util", "mem", "obs", "exec", "data", "sort", "hash", "tree",
            "core"},
    # Top-of-stack consumers: may include anything under src/.
    "bench": None,
    "tests": None,
    "examples": None,
}

# Directories scanned, and the module their files belong to. src/<module>/ is
# derived from the path; these roots map whole trees to one consumer module.
CONSUMER_ROOTS = {"bench": "bench", "tests": "tests", "examples": "examples"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SOURCE_EXTS = (".h", ".cc")


def module_of_include(path):
    """Maps an include path like 'hash/dense_map.h' to its module, or None
    for non-module includes (e.g. 'gtest/gtest.h')."""
    first = path.split("/", 1)[0]
    if first in MODULE_DEPS and first not in CONSUMER_ROOTS:
        return first
    return None


def iter_source_files(root):
    """Yields (abs_path, module) for every checked source file."""
    src_dir = os.path.join(root, "src")
    if os.path.isdir(src_dir):
        for dirpath, _dirnames, filenames in os.walk(src_dir):
            rel = os.path.relpath(dirpath, src_dir)
            module = rel.split(os.sep)[0]
            if module in (".", "") or module not in MODULE_DEPS:
                continue
            for name in filenames:
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name), module
    for consumer_dir, module in CONSUMER_ROOTS.items():
        top = os.path.join(root, consumer_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in filenames:
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name), module


def check_tree(root, module_deps=None):
    """Returns (violations, observed_edges). Each violation is a string
    'file:line: message'; observed_edges maps module -> set(module)."""
    deps = MODULE_DEPS if module_deps is None else module_deps
    violations = []
    observed = {}
    for path, module in iter_source_files(root):
        allowed = deps.get(module)
        try:
            with open(path, encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as err:
            violations.append("%s:0: unreadable (%s)" % (path, err))
            continue
        for lineno, line in enumerate(lines, start=1):
            match = INCLUDE_RE.match(line)
            if match is None:
                continue
            target = module_of_include(match.group(1))
            if target is None or target == module:
                continue
            observed.setdefault(module, set()).add(target)
            if allowed is not None and target not in allowed:
                rel = os.path.relpath(path, root)
                violations.append(
                    "%s:%d: back-edge: module '%s' may not include "
                    "'%s' (saw #include \"%s\")"
                    % (rel, lineno, module, target, match.group(1)))
    return violations, observed


def find_cycle(edges):
    """Returns a cycle as a list of modules, or None. `edges` maps
    module -> iterable of modules it depends on."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for dep in sorted(edges.get(node, ())):
            if color.get(dep, WHITE) == GRAY:
                return stack[stack.index(dep):] + [dep]
            if color.get(dep, WHITE) == WHITE and dep in edges:
                cycle = visit(dep)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def declared_edges():
    """MODULE_DEPS as a plain edge map (consumer modules excluded)."""
    return {m: set(deps) for m, deps in MODULE_DEPS.items()
            if deps is not None}


def run_check(root):
    violations, observed = check_tree(root)
    # Validate the declared DAG itself: if someone edits MODULE_DEPS into a
    # cycle, every per-file check above is meaningless.
    declared_cycle = find_cycle(declared_edges())
    if declared_cycle is not None:
        violations.append(
            "tools/check_layering.py:0: MODULE_DEPS itself contains a "
            "cycle: %s" % " -> ".join(declared_cycle))
    observed_cycle = find_cycle(
        {m: {d for d in deps if d in observed} for m, deps in
         observed.items()})
    if observed_cycle is not None:
        violations.append(
            "(include graph): cycle between modules: %s"
            % " -> ".join(observed_cycle))
    if violations:
        for violation in violations:
            print(violation)
        print("check_layering: %d violation(s)" % len(violations))
        return 1
    modules = sorted(m for m in MODULE_DEPS if MODULE_DEPS[m] is not None)
    print("check_layering: OK (%d modules, %d include edges, no back-edges, "
          "no cycles)" % (len(modules),
                          sum(len(v) for v in observed.values())))
    return 0


# --- Self-test fixtures -----------------------------------------------------

def self_test():
    """Plants a back-edge and a cycle in a scratch mini-tree and asserts both
    are reported, the back-edge with file:line."""
    failures = []

    with tempfile.TemporaryDirectory(prefix="check_layering_") as root:
        hash_dir = os.path.join(root, "src", "hash")
        core_dir = os.path.join(root, "src", "core")
        os.makedirs(hash_dir)
        os.makedirs(core_dir)
        # Planted back-edge: hash/ includes core/ (line 3 of bad_map.h).
        with open(os.path.join(hash_dir, "bad_map.h"), "w",
                  encoding="utf-8") as f:
            f.write('// fixture\n'
                    '#include "util/bits.h"\n'
                    '#include "core/operator.h"\n')
        with open(os.path.join(core_dir, "fine.h"), "w",
                  encoding="utf-8") as f:
            f.write('#include "hash/bad_map.h"\n')
        violations, observed = check_tree(root)
        expected = os.path.join("src", "hash", "bad_map.h") + ":3:"
        if not any(v.startswith(expected) and "'core'" in v
                   for v in violations):
            failures.append(
                "planted back-edge not reported with file:line; got: %r"
                % violations)
        if len(violations) != 1:
            failures.append("expected exactly 1 violation, got %r"
                            % violations)
        # The hash -> core edge must also appear in the observed graph.
        if "core" not in observed.get("hash", set()):
            failures.append("observed edge map missing hash -> core: %r"
                            % observed)

    with tempfile.TemporaryDirectory(prefix="check_layering_") as root:
        # Planted cycle: hash -> tree -> hash, under a permissive dep map so
        # only the cycle detector can catch it.
        hash_dir = os.path.join(root, "src", "hash")
        tree_dir = os.path.join(root, "src", "tree")
        os.makedirs(hash_dir)
        os.makedirs(tree_dir)
        with open(os.path.join(hash_dir, "a.h"), "w", encoding="utf-8") as f:
            f.write('#include "tree/b.h"\n')
        with open(os.path.join(tree_dir, "b.h"), "w", encoding="utf-8") as f:
            f.write('#include "hash/a.h"\n')
        permissive = {m: (None if deps is None else set(MODULE_DEPS) -
                          set(CONSUMER_ROOTS))
                      for m, deps in MODULE_DEPS.items()}
        violations, observed = check_tree(root, module_deps=permissive)
        if violations:
            failures.append("permissive map should report no back-edges: %r"
                            % violations)
        cycle = find_cycle(observed)
        if cycle is None:
            failures.append("planted hash <-> tree cycle not detected: %r"
                            % observed)
        elif not (cycle[0] == cycle[-1] and
                  {"hash", "tree"} <= set(cycle)):
            failures.append("unexpected cycle shape: %r" % cycle)

    # The declared DAG must be acyclic (guards MODULE_DEPS edits).
    if find_cycle(declared_edges()) is not None:
        failures.append("MODULE_DEPS contains a cycle")

    if failures:
        for failure in failures:
            print("self-test FAILED: %s" % failure)
        return 1
    print("check_layering --self-test: OK (back-edge fixture reported with "
          "file:line; cycle fixture detected)")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    return run_check(REPO_ROOT)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
