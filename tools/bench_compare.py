#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and fail on performance regressions.

The bench binaries (bench/bench_common.h, class BenchReport) write one JSON
report per run:

    {"bench": "<name>",
     "params": {"records": "4000000", ...},
     "rows": [{"series": "Rseq/Hash_LP", "x": 1000,
               "cycles": 12345, "millis": 1.25,
               "stats": {"phases": {...}, "counters": {...}}}, ...]}

Rows may carry an optional "meta" object (string -> string) with decision
provenance — e.g. the resolved algorithm label behind an "auto" run and the
adaptive operator's switch trace.

Usage:
    bench_compare.py --self-check BENCH_vector_q1.json
        Validate that a report conforms to the schema (used by CI).

    bench_compare.py baseline.json candidate.json [--threshold 10]
        Match rows by (series, x) and fail (exit 1) if any candidate row is
        more than --threshold percent slower than its baseline row on the
        chosen --metric (default: millis). Rows present on only one side are
        reported but never fail the comparison. Matched rows whose
        meta.algorithm or meta.switch_trace differ are reported as decision
        changes (informational, never failing).

    bench_compare.py --adaptive-gate BENCH_adaptive.json \
        [--adaptive-series Adaptive] [--threshold 10]
        For every x in the report, compare the adaptive series against the
        best and worst fixed series at that x. Fails (exit 1) if the
        adaptive row is more than --threshold percent slower than the best
        fixed strategy anywhere.

    bench_compare.py --speedup-gate BENCH_simd.json \
        --baseline-series tag_probe16/scalar \
        --candidate-series tag_probe16/avx2 [--min-speedup 1.5]
        Within ONE report, require candidate to be at least --min-speedup
        times faster than baseline at every shared x (ratio =
        baseline/candidate on --metric, default cycles for this mode).
        A missing baseline series is an error; a missing candidate series
        warns loudly and passes, so the gate is portable to machines
        without the vector lane (the bench skips unsupported lanes).
"""

import argparse
import json
import sys

REQUIRED_TOP_KEYS = {"bench", "params", "rows"}
REQUIRED_ROW_KEYS = {"series", "x", "cycles", "millis"}


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read {path}: {e}")


def validate(report, path):
    """Returns a list of schema-violation messages (empty = valid)."""
    problems = []
    if not isinstance(report, dict):
        return [f"{path}: top level is not a JSON object"]
    missing = REQUIRED_TOP_KEYS - report.keys()
    if missing:
        problems.append(f"{path}: missing top-level keys: {sorted(missing)}")
    if not isinstance(report.get("bench"), str) or not report.get("bench"):
        problems.append(f"{path}: 'bench' must be a non-empty string")
    if not isinstance(report.get("params"), dict):
        problems.append(f"{path}: 'params' must be an object")
    rows = report.get("rows")
    if not isinstance(rows, list):
        problems.append(f"{path}: 'rows' must be an array")
        return problems
    seen = set()
    for i, row in enumerate(rows):
        where = f"{path}: rows[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = REQUIRED_ROW_KEYS - row.keys()
        if missing:
            problems.append(f"{where}: missing keys: {sorted(missing)}")
            continue
        if not isinstance(row["series"], str) or not row["series"]:
            problems.append(f"{where}: 'series' must be a non-empty string")
        if not isinstance(row["x"], int) or row["x"] < 0:
            problems.append(f"{where}: 'x' must be a non-negative integer")
        if not isinstance(row["cycles"], int) or row["cycles"] < 0:
            problems.append(f"{where}: 'cycles' must be a non-negative integer")
        if not isinstance(row["millis"], (int, float)) or row["millis"] < 0:
            problems.append(f"{where}: 'millis' must be a non-negative number")
        if "stats" in row:
            stats = row["stats"]
            if not isinstance(stats, dict):
                problems.append(f"{where}: 'stats' must be an object")
            else:
                for section in ("phases", "counters"):
                    if section in stats and not isinstance(
                            stats[section], dict):
                        problems.append(
                            f"{where}: stats.{section} must be an object")
        if "meta" in row:
            meta = row["meta"]
            if not isinstance(meta, dict):
                problems.append(f"{where}: 'meta' must be an object")
            else:
                for k, v in meta.items():
                    if not isinstance(k, str) or not isinstance(v, str):
                        problems.append(
                            f"{where}: meta entries must be string->string")
                        break
        key = (row.get("series"), row.get("x"))
        if key in seen:
            problems.append(f"{where}: duplicate (series, x) pair {key}")
        seen.add(key)
    return problems


def self_check(path):
    report = load_report(path)
    problems = validate(report, path)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        return 1
    print(f"{path}: OK ({report['bench']}, {len(report['rows'])} rows)")
    return 0


def index_rows(report):
    return {(row["series"], row["x"]): row for row in report["rows"]}


def compare(baseline_path, candidate_path, metric, threshold_pct):
    baseline = load_report(baseline_path)
    candidate = load_report(candidate_path)
    for report, path in ((baseline, baseline_path),
                         (candidate, candidate_path)):
        problems = validate(report, path)
        if problems:
            for p in problems:
                print(p, file=sys.stderr)
            return 1

    base_rows = index_rows(baseline)
    cand_rows = index_rows(candidate)
    common = sorted(base_rows.keys() & cand_rows.keys())
    only_base = sorted(base_rows.keys() - cand_rows.keys())
    only_cand = sorted(cand_rows.keys() - base_rows.keys())

    regressions = []
    improvements = 0
    for key in common:
        base = base_rows[key][metric]
        cand = cand_rows[key][metric]
        if base <= 0:
            continue  # Cannot compute a ratio against a zero baseline.
        delta_pct = 100.0 * (cand - base) / base
        if delta_pct > threshold_pct:
            regressions.append((key, base, cand, delta_pct))
        elif delta_pct < 0:
            improvements += 1

    decision_changes = []
    for key in common:
        base_meta = base_rows[key].get("meta", {})
        cand_meta = cand_rows[key].get("meta", {})
        for field in ("algorithm", "switch_trace"):
            if base_meta.get(field) != cand_meta.get(field) and (
                    field in base_meta or field in cand_meta):
                decision_changes.append(
                    (key, field, base_meta.get(field, "-"),
                     cand_meta.get(field, "-")))

    print(f"compared {len(common)} rows on '{metric}' "
          f"(threshold {threshold_pct:.1f}%): "
          f"{len(regressions)} regression(s), {improvements} improvement(s)")
    for (series, x), base, cand, delta_pct in regressions:
        print(f"  REGRESSION {series} @ x={x}: "
              f"{base:g} -> {cand:g} ({delta_pct:+.1f}%)")
    for (series, x), field, base, cand in decision_changes:
        print(f"  DECISION {series} @ x={x} {field}: {base} -> {cand}")
    if only_base:
        print(f"  note: {len(only_base)} row(s) only in baseline "
              f"(e.g. {only_base[0]})")
    if only_cand:
        print(f"  note: {len(only_cand)} row(s) only in candidate "
              f"(e.g. {only_cand[0]})")
    return 1 if regressions else 0


def adaptive_gate(path, adaptive_series, metric, threshold_pct):
    """At every (workload, x): adaptive within threshold of the best fixed.

    Series may be workload-prefixed ("Zipf/Adaptive", "Zipf/Hash_PRadix");
    rows are grouped by (prefix, x) so multi-workload reports gate each
    workload independently.
    """
    report = load_report(path)
    problems = validate(report, path)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        return 1

    groups = {}
    for row in report["rows"]:
        workload, _, algo = row["series"].rpartition("/")
        groups.setdefault((workload, row["x"]), []).append((algo, row))

    failures = []
    checked = 0
    for (workload, x) in sorted(groups):
        rows = groups[(workload, x)]
        adaptive = [r for algo, r in rows if algo == adaptive_series]
        fixed = [r for algo, r in rows
                 if algo != adaptive_series and r[metric] > 0]
        if not adaptive or not fixed:
            continue
        checked += 1
        where = f"{workload or 'default'} x={x}"
        ada = adaptive[0][metric]
        best = min(fixed, key=lambda r: r[metric])
        worst = max(fixed, key=lambda r: r[metric])
        delta_pct = 100.0 * (ada - best[metric]) / best[metric]
        speedup_vs_worst = (worst[metric] / ada) if ada > 0 else float("inf")
        trace = adaptive[0].get("meta", {}).get("switch_trace", "-")
        verdict = "FAIL" if delta_pct > threshold_pct else "ok"
        print(f"  {verdict} {where}: adaptive {ada:g} vs best "
              f"{best['series']} {best[metric]:g} ({delta_pct:+.1f}%), "
              f"{speedup_vs_worst:.2f}x over worst {worst['series']} "
              f"[{trace}]")
        if delta_pct > threshold_pct:
            failures.append((where, best["series"], delta_pct))

    if checked == 0:
        print(f"error: no group with both '{adaptive_series}' and fixed "
              f"series", file=sys.stderr)
        return 1
    print(f"adaptive gate: {checked} sweep point(s), "
          f"{len(failures)} failure(s) (threshold {threshold_pct:.1f}% "
          f"over best fixed)")
    return 1 if failures else 0


def speedup_gate(path, baseline_series, candidate_series, metric,
                 min_speedup):
    """Candidate must beat baseline by >= min_speedup at every shared x."""
    report = load_report(path)
    problems = validate(report, path)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        return 1

    by_series = {}
    for row in report["rows"]:
        by_series.setdefault(row["series"], {})[row["x"]] = row
    base = by_series.get(baseline_series)
    cand = by_series.get(candidate_series)
    if not base:
        print(f"error: baseline series '{baseline_series}' not in {path} "
              "(the scalar lane always runs — its absence means the bench "
              "is broken)", file=sys.stderr)
        return 1
    if not cand:
        # The bench skips lanes the machine cannot run, so a missing
        # candidate is a capability gap, not a regression.
        print(f"WARNING: candidate series '{candidate_series}' not in "
              f"{path} — lane unsupported on this machine, speedup gate "
              "SKIPPED (not enforced)")
        return 0

    shared = sorted(base.keys() & cand.keys())
    if not shared:
        print(f"error: '{baseline_series}' and '{candidate_series}' share "
              "no x values", file=sys.stderr)
        return 1
    failures = 0
    for x in shared:
        b, c = base[x][metric], cand[x][metric]
        if c <= 0:
            print(f"  SKIP x={x}: candidate {metric} is zero")
            continue
        ratio = b / c
        verdict = "ok" if ratio >= min_speedup else "FAIL"
        print(f"  {verdict} x={x}: {candidate_series} {c:g} vs "
              f"{baseline_series} {b:g} -> {ratio:.2f}x "
              f"(need >= {min_speedup:g}x)")
        if ratio < min_speedup:
            failures += 1
    print(f"speedup gate: {len(shared)} point(s), {failures} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="one file with --self-check, else "
                             "BASELINE CANDIDATE")
    parser.add_argument("--self-check", action="store_true",
                        help="validate schema of a single report")
    parser.add_argument("--adaptive-gate", action="store_true",
                        help="check the adaptive series against the best "
                             "fixed series at every x of one report")
    parser.add_argument("--adaptive-series", default="Adaptive",
                        help="series name of the adaptive rows "
                             "(default: Adaptive)")
    parser.add_argument("--speedup-gate", action="store_true",
                        help="require --candidate-series to beat "
                             "--baseline-series by --min-speedup within "
                             "one report")
    parser.add_argument("--baseline-series",
                        help="series the speedup is measured against")
    parser.add_argument("--candidate-series",
                        help="series that must be faster")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="minimum baseline/candidate ratio "
                             "(default: 1.5)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="fail if a row regresses by more than this "
                             "percentage (default: 10)")
    parser.add_argument("--metric", choices=("millis", "cycles"),
                        default=None,
                        help="row field to compare (default: millis; "
                             "--speedup-gate defaults to cycles because "
                             "lane kernels finish in microseconds, where "
                             "wall-clock quantization dominates)")
    args = parser.parse_args()
    metric = args.metric or ("cycles" if args.speedup_gate else "millis")

    if args.self_check:
        if len(args.files) != 1:
            parser.error("--self-check takes exactly one file")
        return self_check(args.files[0])
    if args.adaptive_gate:
        if len(args.files) != 1:
            parser.error("--adaptive-gate takes exactly one file")
        return adaptive_gate(args.files[0], args.adaptive_series,
                             metric, args.threshold)
    if args.speedup_gate:
        if len(args.files) != 1:
            parser.error("--speedup-gate takes exactly one file")
        if not args.baseline_series or not args.candidate_series:
            parser.error("--speedup-gate requires --baseline-series and "
                         "--candidate-series")
        return speedup_gate(args.files[0], args.baseline_series,
                            args.candidate_series, metric,
                            args.min_speedup)
    if len(args.files) != 2:
        parser.error("comparison takes exactly two files "
                     "(baseline candidate)")
    return compare(args.files[0], args.files[1], metric, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
