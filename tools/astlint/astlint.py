#!/usr/bin/env python3
"""astlint: AST-grounded concurrency linting over compile_commands.json.

Seven rules run over a per-file model extracted by one of two frontends:

  lock-order                    repo-wide acquires-while-holding graph must
                                be cycle-free and rank-consistent (ranks
                                from src/util/lock_rank.h; same-rank only
                                where the enum sanctions a protocol)
  blocking-in-morsel-body       no parking lock, Wait(), allocating `new`,
                                or I/O inside a `const Morsel&` lambda
  stats-in-morsel-body          no per-morsel stats recording (AST-grounded
                                twin of the lint_invariants.py regex rule)
  fixed-aggregator-construction aggregator choice flows through
                                MakeVectorAggregator / AdaptiveAggregator
  arena-escape                  Tier 6: no pointer allocated from a
                                function-local Arena/WorkerArenas may
                                outlive the arena (return, member store,
                                unjoined task capture, use-after-Reset)
  morsel-capture                Tier 6: by-reference captures in lambdas
                                handed to Submit()/Schedule() need a
                                dominating Wait() in the same scope (or a
                                requires-join summary met at call sites)
  packed-shift                  Tier 6: every shift in the packed-key
                                scope is symbolically bounded below the
                                operand width (see dataflow.py)

The Tier-6 rules share one intraprocedural-with-call-summaries engine
(dataflow.py) whose facts are linked repo-wide after extraction; both
frontends feed it the same lexical facts, so Tier 6 has frontend parity
by construction. --parity-test verifies the Tier 4-5 extraction agrees
across frontends over every fixture.

Frontends (--mode):
  ast   libclang over compile_commands.json (CI: apt install clang
        python3-clang). Skips LOUDLY with exit 0 when unavailable, so the
        ast-analyze job never silently greenwashes. Pass
        --require-frontend=ast to turn that skip into a hard failure
        (what the ast-dataflow CI job does).
  lex   self-contained lexical fallback, no third-party deps; what local
        ctest runs.
  auto  ast if available, else lex with a printed notice (default).

Waivers: `// astlint:allow(rule): reason` on the offending line or the
line above. A lock-order waiver suppresses the acquisition *edge*, so
waiving one edge of a cycle breaks the cycle. A waiver whose rule has no
raw fact on its own or the next line is itself reported (stale-waiver),
so waivers cannot outlive the code they excuse.

Artifacts: --graph-out writes the acquires-while-holding graph;
--dataflow-out writes astlint_dataflow.json (every arena escape, task
capture, and audited shift site — including the clean ones).

Self-test: --self-test replays the planted-violation fixtures under
tools/astlint/fixtures/ through the active frontend — each must fire its
rule exactly the expected number of times, fire nothing else, and go
clean when every reported line is waived. Registered in ctest as
astlint_selftest.
"""

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import dataflow
import lex_frontend
import model

REPO = model.REPO
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"
GATHER_DIRS = ("src", "bench", "examples")
WAIVER_RE = re.compile(r"//\s*astlint:allow\(([a-z-]+)\)")
# Meta-rule: a waiver whose rule has no raw fact at the covered lines.
STALE_RULE = "stale-waiver"

# (fixture file, pretend repo path, rule that must fire, expected count).
# A rule of None asserts the fixture is clean.
FIXTURES = (
    ("lock_cycle.cc", "src/exec/lock_cycle_fixture.cc",
     model.RULE_LOCK_ORDER, 1),
    ("rank_inversion.cc", "src/exec/rank_inversion_fixture.cc",
     model.RULE_LOCK_ORDER, 1),
    ("same_rank.cc", "src/exec/same_rank_fixture.cc",
     model.RULE_LOCK_ORDER, 1),
    ("blocking_in_morsel.cc", "src/exec/blocking_fixture.cc",
     model.RULE_BLOCKING, 4),
    ("stats_in_morsel.cc", "src/exec/stats_fixture.cc",
     model.RULE_STATS, 1),
    ("fixed_aggregator.cc", "src/exec/fixed_agg_fixture.cc",
     model.RULE_FIXED_AGG, 1),
    ("clean_ok.cc", "src/exec/clean_fixture.cc", None, 0),
    ("arena_escape.cc", "src/exec/arena_escape_fixture.cc",
     model.RULE_ARENA_ESCAPE, 5),
    ("morsel_capture.cc", "src/exec/morsel_capture_fixture.cc",
     model.RULE_TASK_CAPTURE, 3),
    ("packed_shift.cc", "src/data/key_codec_fixture.cc",
     model.RULE_PACKED_SHIFT, 3),
    ("fixed_point_shift.cc", "src/data/lineitem_fixture.cc",
     model.RULE_PACKED_SHIFT, 1),
    ("stale_waiver.cc", "src/exec/stale_waiver_fixture.cc",
     "stale-waiver", 1),
    ("clean_dataflow.cc", "src/exec/clean_dataflow_fixture.cc", None, 0),
)


def collect_waivers(text):
    """Maps 1-based line number -> set of waived rules. A waiver covers its
    own line and the next line."""
    waived = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in WAIVER_RE.finditer(line):
            rule = match.group(1)
            waived.setdefault(lineno, set()).add(rule)
            waived.setdefault(lineno + 1, set()).add(rule)
    return waived


def apply_waivers(file_model, waived):
    def live(rule, line):
        return rule not in waived.get(line, ())

    file_model.edges = [
        e for e in file_model.edges if live(model.RULE_LOCK_ORDER, e.line)]
    file_model.morsel_flags = [
        f for f in file_model.morsel_flags
        if live(model.RULE_STATS if f.kind == "stats" else model.RULE_BLOCKING,
                f.line)]
    file_model.aggregator_constructions = [
        c for c in file_model.aggregator_constructions
        if live(model.RULE_FIXED_AGG, c.line)]
    file_model.arena_escapes = [
        e for e in file_model.arena_escapes
        if live(model.RULE_ARENA_ESCAPE, e.line)]
    file_model.task_captures = [
        c for c in file_model.task_captures
        if live(model.RULE_TASK_CAPTURE, c.line)]
    file_model.shift_sites = [
        s for s in file_model.shift_sites
        if s.ok or live(model.RULE_PACKED_SHIFT, s.line)]
    return file_model


def raw_fact_lines(file_model):
    """rule -> lines carrying a raw (pre-waiver) fact of that rule. This is
    what keeps a waiver alive: lock-order liveness is 'an edge exists here',
    not 'the edge still violates' (same contract as lint_invariants.py)."""
    lines = {rule: set() for rule in model.ALL_RULES}
    for e in file_model.edges:
        lines[model.RULE_LOCK_ORDER].add(e.line)
    for f in file_model.morsel_flags:
        rule = model.RULE_STATS if f.kind == "stats" else model.RULE_BLOCKING
        lines[rule].add(f.line)
    for c in file_model.aggregator_constructions:
        lines[model.RULE_FIXED_AGG].add(c.line)
    for e in file_model.arena_escapes:
        lines[model.RULE_ARENA_ESCAPE].add(e.line)
    for c in file_model.task_captures:
        lines[model.RULE_TASK_CAPTURE].add(c.line)
    for s in file_model.shift_sites:
        if not s.ok:
            lines[model.RULE_PACKED_SHIFT].add(s.line)
    return lines


def stale_waiver_violations(file_model, text):
    """Waivers whose rule has no raw fact on the covered lines. Suppressed
    by astlint:allow(stale-waiver) on the same line; stale-waiver waivers
    themselves are exempt from staleness (they have no fact to match)."""
    facts = raw_fact_lines(file_model)
    waived = collect_waivers(text)
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in WAIVER_RE.finditer(line):
            rule = match.group(1)
            if rule == STALE_RULE:
                continue
            if facts.get(rule, set()) & {lineno, lineno + 1}:
                continue
            if STALE_RULE in waived.get(lineno, ()):
                continue
            out.append(model.Violation(
                file_model.path, lineno, STALE_RULE,
                f"astlint:allow({rule}) matches no {rule} fact on this or "
                "the next line — the waived code is gone; remove the "
                "waiver"))
    return out


def link_and_waive(models, texts):
    """The repo-wide phase: Tier-6 linking must see raw (unwaived) facts,
    and staleness must be judged on them too — so extraction, link, stale
    scan, and waiver application run in that order. `texts` maps model
    path -> source text. Returns the stale-waiver violations."""
    dataflow.link(models)
    stale = []
    for file_model in models:
        text = texts.get(file_model.path)
        if text is None:
            continue
        stale.extend(stale_waiver_violations(file_model, text))
        apply_waivers(file_model, collect_waivers(text))
    return stale


def repo_files():
    for top in GATHER_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc"):
                rel = path.relative_to(REPO).as_posix()
                if rel not in model.SKIP_FILES:
                    yield rel


def gather_lex():
    models, texts = [], {}
    for rel in repo_files():
        text = (REPO / rel).read_text(encoding="utf-8")
        texts[rel] = text
        models.append(lex_frontend.extract(rel, text))
    return models, link_and_waive(models, texts)


def gather_ast(build_dir):
    import ast_frontend
    models = ast_frontend.extract_repo(REPO, build_dir, log=print)
    texts = {}
    for file_model in models:
        path = REPO / file_model.path
        if path.is_file():
            texts[file_model.path] = path.read_text(encoding="utf-8")
    return models, link_and_waive(models, texts)


# --- Self-test ---------------------------------------------------------------

def run_fixture(extract, pretend, text):
    file_model = extract(pretend, text)
    stale = link_and_waive([file_model], {pretend: text})
    ranks = model.RankTable.load(
        REPO, extra_texts=[(Path(pretend).name, text)])
    return sorted(model.run_rules([file_model], ranks) + stale,
                  key=lambda v: (v.file, v.line, v.rule))


def self_test(extract, frontend_name):
    failures = []
    for fixture, pretend, rule, expected in FIXTURES:
        text = (FIXTURE_DIR / fixture).read_text(encoding="utf-8")
        violations = run_fixture(extract, pretend, text)
        hits = [v for v in violations if v.rule == rule]
        others = [v for v in violations if v.rule != rule]
        if len(hits) != expected:
            failures.append(
                f"{fixture}: expected {expected} {rule} violation(s), "
                f"got {len(hits)}: {hits}")
        if others:
            failures.append(f"{fixture}: unexpected violations: {others}")
        if rule is not None and len(hits) == expected and expected > 0:
            lines = text.splitlines()
            for violation in hits:
                lines[violation.line - 1] += (
                    f"  // astlint:allow({rule}): fixture self-test")
            waived = run_fixture(extract, pretend, "\n".join(lines) + "\n")
            if waived:
                failures.append(
                    f"{fixture}: waivers did not suppress: {waived}")
        status = "FAIL" if any(f.startswith(fixture) for f in failures) \
            else "ok"
        print(f"astlint self-test [{frontend_name}] {fixture}: {status}")
    for failure in failures:
        print(f"astlint self-test FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# --- Frontend parity ---------------------------------------------------------

def parity_test():
    """Runs every fixture through BOTH frontends and diffs the normalized
    findings (line, rule). Divergence is a frontend bug: the fixtures are
    the shared semantics contract. Skips loudly (exit 0) when the AST
    frontend is unavailable — CI pairs this with --require-frontend=ast."""
    import ast_frontend
    ok, reason = ast_frontend.available()
    if not ok:
        print("=" * 72)
        print(f"astlint: parity test SKIPPED — AST frontend unavailable: "
              f"{reason}")
        print("astlint: the lexical self-test still covers the fixtures; "
              "CI runs the parity diff with both frontends present.")
        print("=" * 72)
        return 0
    failures = []
    for fixture, pretend, _rule, _expected in FIXTURES:
        text = (FIXTURE_DIR / fixture).read_text(encoding="utf-8")
        lex_found = {(v.line, v.rule)
                     for v in run_fixture(lex_frontend.extract, pretend, text)}
        ast_found = {(v.line, v.rule)
                     for v in run_fixture(ast_frontend.extract_text, pretend,
                                          text)}
        if lex_found != ast_found:
            failures.append(
                f"{fixture}: lex-only={sorted(lex_found - ast_found)} "
                f"ast-only={sorted(ast_found - lex_found)}")
            print(f"astlint parity {fixture}: FAIL")
        else:
            print(f"astlint parity {fixture}: ok "
                  f"({len(lex_found)} finding(s) agree)")
    for failure in failures:
        print(f"astlint parity FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# --- CLI ---------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        description="AST-grounded concurrency linting for memagg")
    parser.add_argument("--mode", choices=("auto", "ast", "lex"),
                        default="auto")
    parser.add_argument("-p", "--build-dir", default=str(REPO / "build"),
                        help="directory containing compile_commands.json "
                             "(ast mode)")
    parser.add_argument("--graph-out", metavar="PATH",
                        help="write the acquires-while-holding graph JSON")
    parser.add_argument("--dataflow-out", metavar="PATH",
                        help="write the Tier-6 dataflow facts JSON "
                             "(astlint_dataflow.json CI artifact)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the planted-violation fixtures")
    parser.add_argument("--parity-test", action="store_true",
                        help="diff normalized fixture findings across both "
                             "frontends")
    parser.add_argument("--require-frontend", choices=("ast",),
                        help="hard-fail (exit 2) instead of skipping when "
                             "this frontend is unavailable (CI guard)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in model.ALL_RULES + (STALE_RULE,):
            print(rule)
        return 0

    if args.require_frontend == "ast":
        import ast_frontend
        ok, reason = ast_frontend.available()
        if not ok:
            print(f"astlint: error: --require-frontend=ast but the AST "
                  f"frontend is unavailable: {reason}", file=sys.stderr)
            print("astlint: this is a hard failure (CI must not greenwash "
                  "by silently skipping the AST analysis)", file=sys.stderr)
            return 2

    if args.parity_test:
        return parity_test()

    frontend = "lex"
    if args.mode in ("auto", "ast"):
        import ast_frontend
        ok, reason = ast_frontend.available()
        if ok:
            frontend = "ast"
        elif args.mode == "ast":
            print("=" * 72)
            print(f"astlint: SKIPPED — AST frontend unavailable: {reason}")
            print("astlint: install clang + python3-clang to run the "
                  "AST-grounded analysis; the lexical fallback still runs "
                  "under ctest.")
            print("=" * 72)
            return 0
        else:
            print(f"astlint: AST frontend unavailable ({reason}); "
                  "falling back to the lexical frontend")

    if args.self_test:
        if frontend == "ast":
            import ast_frontend
            extract = ast_frontend.extract_text
        else:
            extract = lex_frontend.extract
        return self_test(extract, frontend)

    if frontend == "ast":
        build_dir = Path(args.build_dir)
        if not (build_dir / "compile_commands.json").is_file():
            if args.mode == "ast":
                print(f"astlint: error: no compile_commands.json in "
                      f"{build_dir} (configure with "
                      f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
                      file=sys.stderr)
                return 2
            print(f"astlint: no compile_commands.json in {build_dir}; "
                  "falling back to the lexical frontend")
            frontend = "lex"

    if frontend == "ast":
        models, stale = gather_ast(args.build_dir)
    else:
        models, stale = gather_lex()

    ranks = model.RankTable.load(REPO)
    violations = sorted(model.run_rules(models, ranks) + stale,
                        key=lambda v: (v.file, v.line, v.rule))

    if args.graph_out:
        Path(args.graph_out).write_text(model.graph_json(models, ranks),
                                        encoding="utf-8")
        print(f"astlint: wrote lock graph to {args.graph_out}")
    if args.dataflow_out:
        Path(args.dataflow_out).write_text(model.dataflow_json(models),
                                           encoding="utf-8")
        print(f"astlint: wrote dataflow facts to {args.dataflow_out}")

    for violation in violations:
        print(f"{violation.file}:{violation.line}: [{violation.rule}] "
              f"{violation.message}")
    edge_count = sum(len(m.edges) for m in models)
    func_count = sum(len(m.functions) for m in models)
    shift_count = sum(len(m.shift_sites) for m in models)
    print(f"astlint [{frontend}]: {len(models)} file(s), {edge_count} "
          f"acquires-while-holding edge(s), {func_count} function(s), "
          f"{shift_count} audited shift(s), {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
