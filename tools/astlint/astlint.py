#!/usr/bin/env python3
"""astlint: AST-grounded concurrency linting over compile_commands.json.

Four rules run over a per-file model extracted by one of two frontends:

  lock-order                    repo-wide acquires-while-holding graph must
                                be cycle-free and rank-consistent (ranks
                                from src/util/lock_rank.h; same-rank only
                                where the enum sanctions a protocol)
  blocking-in-morsel-body       no parking lock, Wait(), allocating `new`,
                                or I/O inside a `const Morsel&` lambda
  stats-in-morsel-body          no per-morsel stats recording (AST-grounded
                                twin of the lint_invariants.py regex rule)
  fixed-aggregator-construction aggregator choice flows through
                                MakeVectorAggregator / AdaptiveAggregator

Frontends (--mode):
  ast   libclang over compile_commands.json (CI: apt install clang
        python3-clang). Skips LOUDLY with exit 0 when unavailable, so the
        ast-analyze job never silently greenwashes.
  lex   self-contained lexical fallback, no third-party deps; what local
        ctest runs.
  auto  ast if available, else lex with a printed notice (default).

Waivers: `// astlint:allow(rule): reason` on the offending line or the
line above. A lock-order waiver suppresses the acquisition *edge*, so
waiving one edge of a cycle breaks the cycle.

Self-test: --self-test replays the planted-violation fixtures under
tools/astlint/fixtures/ through the active frontend — each must fire its
rule exactly the expected number of times, fire nothing else, and go
clean when every reported line is waived. Registered in ctest as
astlint_selftest.
"""

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lex_frontend
import model

REPO = model.REPO
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"
GATHER_DIRS = ("src", "bench", "examples")
WAIVER_RE = re.compile(r"//\s*astlint:allow\(([a-z-]+)\)")

# (fixture file, pretend repo path, rule that must fire, expected count).
# A rule of None asserts the fixture is clean.
FIXTURES = (
    ("lock_cycle.cc", "src/exec/lock_cycle_fixture.cc",
     model.RULE_LOCK_ORDER, 1),
    ("rank_inversion.cc", "src/exec/rank_inversion_fixture.cc",
     model.RULE_LOCK_ORDER, 1),
    ("same_rank.cc", "src/exec/same_rank_fixture.cc",
     model.RULE_LOCK_ORDER, 1),
    ("blocking_in_morsel.cc", "src/exec/blocking_fixture.cc",
     model.RULE_BLOCKING, 4),
    ("stats_in_morsel.cc", "src/exec/stats_fixture.cc",
     model.RULE_STATS, 1),
    ("fixed_aggregator.cc", "src/exec/fixed_agg_fixture.cc",
     model.RULE_FIXED_AGG, 1),
    ("clean_ok.cc", "src/exec/clean_fixture.cc", None, 0),
)


def collect_waivers(text):
    """Maps 1-based line number -> set of waived rules. A waiver covers its
    own line and the next line."""
    waived = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in WAIVER_RE.finditer(line):
            rule = match.group(1)
            waived.setdefault(lineno, set()).add(rule)
            waived.setdefault(lineno + 1, set()).add(rule)
    return waived


def apply_waivers(file_model, waived):
    def live(rule, line):
        return rule not in waived.get(line, ())

    file_model.edges = [
        e for e in file_model.edges if live(model.RULE_LOCK_ORDER, e.line)]
    file_model.morsel_flags = [
        f for f in file_model.morsel_flags
        if live(model.RULE_STATS if f.kind == "stats" else model.RULE_BLOCKING,
                f.line)]
    file_model.aggregator_constructions = [
        c for c in file_model.aggregator_constructions
        if live(model.RULE_FIXED_AGG, c.line)]
    return file_model


def repo_files():
    for top in GATHER_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc"):
                rel = path.relative_to(REPO).as_posix()
                if rel not in model.SKIP_FILES:
                    yield rel


def gather_lex():
    models = []
    for rel in repo_files():
        text = (REPO / rel).read_text(encoding="utf-8")
        models.append(apply_waivers(lex_frontend.extract(rel, text),
                                    collect_waivers(text)))
    return models


def gather_ast(build_dir):
    import ast_frontend
    models = ast_frontend.extract_repo(REPO, build_dir, log=print)
    for file_model in models:
        path = REPO / file_model.path
        if path.is_file():
            apply_waivers(file_model,
                          collect_waivers(path.read_text(encoding="utf-8")))
    return models


# --- Self-test ---------------------------------------------------------------

def run_fixture(extract, pretend, text):
    file_model = apply_waivers(extract(pretend, text), collect_waivers(text))
    ranks = model.RankTable.load(
        REPO, extra_texts=[(Path(pretend).name, text)])
    return model.run_rules([file_model], ranks)


def self_test(extract, frontend_name):
    failures = []
    for fixture, pretend, rule, expected in FIXTURES:
        text = (FIXTURE_DIR / fixture).read_text(encoding="utf-8")
        violations = run_fixture(extract, pretend, text)
        hits = [v for v in violations if v.rule == rule]
        others = [v for v in violations if v.rule != rule]
        if len(hits) != expected:
            failures.append(
                f"{fixture}: expected {expected} {rule} violation(s), "
                f"got {len(hits)}: {hits}")
        if others:
            failures.append(f"{fixture}: unexpected violations: {others}")
        if rule is not None and len(hits) == expected and expected > 0:
            lines = text.splitlines()
            for violation in hits:
                lines[violation.line - 1] += (
                    f"  // astlint:allow({rule}): fixture self-test")
            waived = run_fixture(extract, pretend, "\n".join(lines) + "\n")
            if waived:
                failures.append(
                    f"{fixture}: waivers did not suppress: {waived}")
        status = "FAIL" if any(f.startswith(fixture) for f in failures) \
            else "ok"
        print(f"astlint self-test [{frontend_name}] {fixture}: {status}")
    for failure in failures:
        print(f"astlint self-test FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# --- CLI ---------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        description="AST-grounded concurrency linting for memagg")
    parser.add_argument("--mode", choices=("auto", "ast", "lex"),
                        default="auto")
    parser.add_argument("-p", "--build-dir", default=str(REPO / "build"),
                        help="directory containing compile_commands.json "
                             "(ast mode)")
    parser.add_argument("--graph-out", metavar="PATH",
                        help="write the acquires-while-holding graph JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="run the planted-violation fixtures")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in model.ALL_RULES:
            print(rule)
        return 0

    frontend = "lex"
    if args.mode in ("auto", "ast"):
        import ast_frontend
        ok, reason = ast_frontend.available()
        if ok:
            frontend = "ast"
        elif args.mode == "ast":
            print("=" * 72)
            print(f"astlint: SKIPPED — AST frontend unavailable: {reason}")
            print("astlint: install clang + python3-clang to run the "
                  "AST-grounded analysis; the lexical fallback still runs "
                  "under ctest.")
            print("=" * 72)
            return 0
        else:
            print(f"astlint: AST frontend unavailable ({reason}); "
                  "falling back to the lexical frontend")

    if args.self_test:
        if frontend == "ast":
            import ast_frontend
            extract = ast_frontend.extract_text
        else:
            extract = lex_frontend.extract
        return self_test(extract, frontend)

    if frontend == "ast":
        build_dir = Path(args.build_dir)
        if not (build_dir / "compile_commands.json").is_file():
            if args.mode == "ast":
                print(f"astlint: error: no compile_commands.json in "
                      f"{build_dir} (configure with "
                      f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
                      file=sys.stderr)
                return 2
            print(f"astlint: no compile_commands.json in {build_dir}; "
                  "falling back to the lexical frontend")
            frontend = "lex"

    if frontend == "ast":
        models = gather_ast(args.build_dir)
    else:
        models = gather_lex()

    ranks = model.RankTable.load(REPO)
    violations = model.run_rules(models, ranks)

    if args.graph_out:
        Path(args.graph_out).write_text(model.graph_json(models, ranks),
                                        encoding="utf-8")
        print(f"astlint: wrote lock graph to {args.graph_out}")

    for violation in violations:
        print(f"{violation.file}:{violation.line}: [{violation.rule}] "
              f"{violation.message}")
    edge_count = sum(len(m.edges) for m in models)
    print(f"astlint [{frontend}]: {len(models)} file(s), {edge_count} "
          f"acquires-while-holding edge(s), {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
