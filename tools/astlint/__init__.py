"""astlint: AST-grounded concurrency linting for memagg.

See astlint.py for the CLI and docs/static_analysis.md for the rule catalog.
"""
