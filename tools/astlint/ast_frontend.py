"""libclang AST frontend for astlint.

Parses translation units through clang.cindex (over compile_commands.json
for whole-repo runs, or standalone for fixtures) and reduces the cursor
tree to the same event stream the lexical frontend produces: guard
constructions, member Lock/Unlock calls with real receivers, REQUIRES()
entry conditions, lambdas with a `const Morsel&` parameter,
new-expressions, and aggregator constructions. Scope structure comes from
CompoundStmt extents rather than raw braces; the same stack replay as
lex_frontend then turns events + scopes into acquires-while-holding
edges, so both frontends share one edge semantics (and one fixture
suite — `astlint.py --self-test` runs against whichever frontend is
active).

Availability is probed at runtime: clang.cindex (the Debian python3-clang
package) plus a loadable libclang. When either is missing the caller is
expected to skip loudly or fall back to the lexical frontend — this module
never hard-fails at import.
"""

import glob
import re
from pathlib import Path

import dataflow
from model import (AcquireEdge, AggregatorConstruction, FileModel,
                   GUARD_CLASSES, MorselFlag, SKIP_FILES, STRIPE_GUARD,
                   canon_lock)
import lex_frontend

LOCK_METHODS = {
    "Lock": "acquire", "LockShared": "acquire", "lock": "acquire",
    "TryLock": "try", "try_lock": "try",
    "Unlock": "release", "UnlockShared": "release", "unlock": "release",
}
BLOCKING_GUARDS = set(lex_frontend.BLOCKING_GUARDS)
IO_CALLS = {"printf", "fprintf", "fopen", "fwrite", "fputs", "puts"}
IO_STREAMS = {"cout", "cerr"}
AGG_NAME_RE = re.compile(r"\b([A-Z]\w*Aggregator)\s*<")
REQUIRES_RE = lex_frontend.REQUIRES_RE

_CINDEX = None
_CINDEX_ERROR = None


def load_cindex():
    """Returns (cindex module or None, reason string when None). Caches."""
    global _CINDEX, _CINDEX_ERROR
    if _CINDEX is not None or _CINDEX_ERROR is not None:
        return _CINDEX, _CINDEX_ERROR
    try:
        from clang import cindex
    except ImportError:
        _CINDEX_ERROR = ("python3 clang bindings not importable "
                         "(apt install python3-clang)")
        return None, _CINDEX_ERROR
    try:
        cindex.Index.create()
    except Exception:  # libclang.so not on the default search path.
        candidates = sorted(
            glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
            + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
            + glob.glob("/usr/lib/*/libclang-*.so*"),
            reverse=True)
        for candidate in candidates:
            try:
                cindex.Config.set_library_file(candidate)
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.loaded = False
        else:
            _CINDEX_ERROR = ("clang.cindex importable but no loadable "
                             "libclang shared library found")
            return None, _CINDEX_ERROR
    _CINDEX = cindex
    return _CINDEX, None


def available():
    """(bool, reason-or-None)."""
    cindex, error = load_cindex()
    return cindex is not None, error


# --- Token helpers -----------------------------------------------------------

def _spellings(cursor):
    return [t.spelling for t in cursor.get_tokens()]


def _receiver_of_call(spellings, method):
    """Receiver text of `state_ -> mutex . Lock ( )` given method='Lock'."""
    try:
        i = len(spellings) - 1 - spellings[::-1].index(method)
    except ValueError:
        return None
    receiver = spellings[:i]
    if receiver and receiver[-1] in ("->", "."):
        receiver = receiver[:-1]
    return "".join(receiver) if receiver else None


def _ctor_args(spellings):
    """Argument expressions of a declaration's initializer: the token span
    between the first top-level '('/'{' and its match, split on top-level
    commas."""
    depth = 0
    args, current = [], []
    opened = False
    for s in spellings:
        if not opened:
            if s in "({":
                opened = True
                depth = 1
            continue
        if s in "({[":
            depth += 1
        elif s in ")}]":
            depth -= 1
            if depth == 0:
                break
        if depth == 1 and s == ",":
            args.append("".join(current))
            current = []
        else:
            current.append(s)
    if current:
        args.append("".join(current))
    return [a for a in args if a]


# --- Per-file accumulation ---------------------------------------------------

class _FileState:
    """Events for one source file. Sets dedupe the same site seen from the
    many TUs that include a header."""

    def __init__(self, path):
        self.path = path
        self.scopes = set()        # (start_offset, end_offset)
        self.lock_events = set()   # (offset, kind, name, line)
        self.flag_events = set()   # (offset, kind, detail, line)
        self.lambda_spans = set()  # (start_offset, end_offset)
        self.aggs = {}             # line -> name

    def to_model(self):
        actions = []
        for start, end in self.scopes:
            actions.append((start, 0, "{", None))
            actions.append((end, 0, "}", None))
        for offset, kind, name, line in self.lock_events:
            actions.append((offset, 1, kind, (name, line)))
        edges = _replay(actions, self.path)
        flags = []
        for offset, kind, detail, line in sorted(self.flag_events):
            if any(s <= offset < e for s, e in self.lambda_spans):
                flags.append(MorselFlag(kind, detail, self.path, line))
        ctors = [AggregatorConstruction(name, self.path, line)
                 for line, name in sorted(self.aggs.items())]
        return FileModel(path=self.path, edges=edges, morsel_flags=flags,
                         aggregator_constructions=ctors)


def _replay(actions, path):
    """Same stack replay as lex_frontend.replay_scopes, over CompoundStmt
    extents instead of raw braces. REQUIRES entry conditions are injected
    as acquire events at the body-open offset (priority after the open),
    so they live exactly for the body scope."""
    actions = sorted(actions, key=lambda a: (a[0], a[1], a[2] != "{"))
    stack = [[]]
    edges = []
    for _, _, kind, payload in actions:
        if kind == "{":
            stack.append([])
        elif kind == "}":
            if len(stack) > 1:
                stack.pop()
        elif kind in ("acquire", "try", "entry"):
            name, line = payload
            if kind == "acquire":
                for scope in stack:
                    for held in scope:
                        edges.append(AcquireEdge(held, name, path, line))
            stack[-1].append(name)
        else:  # release
            name, _ = payload
            for scope in reversed(stack):
                if name in scope:
                    for i in range(len(scope) - 1, -1, -1):
                        if scope[i] == name:
                            del scope[i]
                            break
                    break
    seen, unique = set(), []
    for edge in edges:
        if edge not in seen:
            seen.add(edge)
            unique.append(edge)
    return unique


# --- Cursor walk -------------------------------------------------------------

def _function_entry_locks(cursor, kinds, file_name):
    """For a function/method definition annotated REQUIRES(x): yields
    (body_open_offset, lock_name). The annotation is macro-expanded by the
    time clang sees it, so it is recovered from the definition's tokens
    before the body brace."""
    body = next((c for c in cursor.get_children()
                 if c.kind == kinds.COMPOUND_STMT), None)
    if body is None:
        return
    body_offset = body.extent.start.offset
    head = []
    for token in cursor.get_tokens():
        if token.extent.start.offset >= body_offset:
            break
        head.append(token.spelling)
    for match in REQUIRES_RE.finditer(" ".join(head)):
        for arg in match.group(1).split(","):
            name = canon_lock(arg.strip(), file_name)
            if name:
                yield body_offset, name


def _walk_tu(cindex, tu, states, path_filter):
    kinds = cindex.CursorKind
    function_kinds = (kinds.FUNCTION_DECL, kinds.CXX_METHOD,
                      kinds.CONSTRUCTOR, kinds.DESTRUCTOR,
                      kinds.FUNCTION_TEMPLATE)
    for cursor in tu.cursor.walk_preorder():
        location = cursor.location
        if location.file is None:
            continue
        rel = path_filter(location.file.name)
        if rel is None:
            continue
        state = states.setdefault(rel, _FileState(rel))
        extent = cursor.extent
        offset = extent.start.offset
        line = location.line
        kind = cursor.kind
        file_name = Path(rel).name

        if kind == kinds.COMPOUND_STMT:
            state.scopes.add((offset, extent.end.offset))
        elif kind in function_kinds:
            if cursor.is_definition():
                for body_offset, name in _function_entry_locks(
                        cursor, kinds, file_name):
                    state.lock_events.add((body_offset, "entry", name, line))
        elif kind == kinds.LAMBDA_EXPR:
            params = [c for c in cursor.get_children()
                      if c.kind == kinds.PARM_DECL]
            if any("Morsel" in p.type.spelling for p in params):
                state.lambda_spans.add((offset, extent.end.offset))
        elif kind == kinds.CALL_EXPR:
            spelling = cursor.spelling
            if spelling in LOCK_METHODS:
                receiver = _receiver_of_call(_spellings(cursor), spelling)
                if receiver:
                    name = canon_lock(receiver, file_name)
                    state.lock_events.add(
                        (offset, LOCK_METHODS[spelling], name, line))
                    if (LOCK_METHODS[spelling] == "acquire"
                            and spelling != "lock"):
                        # Parking acquisition (Mutex::Lock/LockShared);
                        # SpinLock::lock spins and is morsel-legal.
                        state.flag_events.add(
                            (offset, "blocking-lock",
                             f"blocking {spelling}() call", line))
            elif spelling == "Wait":
                state.flag_events.add(
                    (offset, "wait", "Wait() on a task group or pool", line))
            elif spelling in IO_CALLS:
                state.flag_events.add((offset, "io", "I/O call", line))
            elif spelling in ("AddPhase", "WorkerShard"):
                state.flag_events.add(
                    (offset, "stats", "stats recording", line))
            elif spelling == "make_unique":
                match = AGG_NAME_RE.search(
                    cursor.type.spelling + " " + "".join(_spellings(cursor)))
                if match:
                    state.aggs.setdefault(line, match.group(1))
        elif kind in (kinds.DECL_REF_EXPR, kinds.MEMBER_REF_EXPR,
                      kinds.TYPE_REF):
            ref = cursor.spelling.split("::")[-1].split("<")[0].strip()
            if ref in IO_STREAMS or ref == "ofstream":
                state.flag_events.add((offset, "io", "I/O call", line))
            elif ref in ("StatCounter", "PhaseTimer"):
                state.flag_events.add(
                    (offset, "stats", "stats recording", line))
        elif kind == kinds.CXX_NEW_EXPR:
            toks = _spellings(cursor)
            if len(toks) >= 2 and toks[0] == "new" and toks[1] != "(":
                state.flag_events.add(
                    (offset, "global-new",
                     "allocating `new` (global allocator lock)", line))
                match = AGG_NAME_RE.search(" ".join(toks))
                if match:
                    state.aggs.setdefault(line, match.group(1))
        elif kind == kinds.CXX_CONSTRUCT_EXPR:
            type_spelling = cursor.type.spelling
            guard = next((g for g in GUARD_CLASSES
                          if re.search(rf"\b{g}\b", type_spelling)), None)
            if guard is not None:
                for arg in _ctor_args(_spellings(cursor)):
                    if arg.startswith("std::"):
                        continue
                    name = canon_lock(arg, file_name)
                    if name:
                        state.lock_events.add((offset, "acquire", name, line))
                if guard in BLOCKING_GUARDS:
                    state.flag_events.add(
                        (offset, "blocking-lock",
                         f"{guard} acquisition (parks the worker)", line))
            elif re.search(rf"\b{STRIPE_GUARD}\b", type_spelling):
                state.lock_events.add(
                    (offset, "acquire", canon_lock("first_", file_name),
                     line))
            else:
                match = AGG_NAME_RE.search(type_spelling)
                if match:
                    state.aggs.setdefault(line, match.group(1))


# --- Entry points ------------------------------------------------------------

def _clean_args(command):
    """Compiler args safe to hand to libclang: drop the compiler itself,
    -c/-o pairs, and the input file."""
    items = list(command.arguments)
    source = items[-1]
    args = []
    skip_next = False
    for arg in items[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", source):
            continue
        if arg == "-o":
            skip_next = True
            continue
        args.append(arg)
    return args


def extract_text(pretend_path, text, extra_args=()):
    """Parses standalone text (fixture self-tests) as `pretend_path`."""
    cindex, error = load_cindex()
    if cindex is None:
        raise RuntimeError(error)
    index = cindex.Index.create()
    tu = index.parse(pretend_path,
                     args=["-std=c++20", "-x", "c++"] + list(extra_args),
                     unsaved_files=[(pretend_path, text)])
    states = {}
    _walk_tu(cindex, tu, states,
             lambda f: pretend_path if f == pretend_path else None)
    state = states.get(pretend_path, _FileState(pretend_path))
    # Tier-6 facts come from the shared lexical extractor in both frontends
    # (parity by construction): see dataflow.py.
    return dataflow.extract_into(state.to_model(), text)


def extract_repo(repo, build_dir, log=lambda msg: None):
    """Parses every TU under src/bench/examples from compile_commands.json,
    plus a synthetic TU including every src/ header (headers only included
    by tests would otherwise be invisible). Returns FileModels for repo
    files, merged across TUs."""
    cindex, error = load_cindex()
    if cindex is None:
        raise RuntimeError(error)
    repo = Path(repo).resolve()

    def path_filter(file_name):
        try:
            rel = Path(file_name).resolve().relative_to(repo).as_posix()
        except ValueError:
            return None
        if rel in SKIP_FILES or not rel.startswith(
                ("src/", "bench/", "examples/")):
            return None
        return rel

    db = cindex.CompilationDatabase.fromDirectory(str(build_dir))
    index = cindex.Index.create()
    states = {}
    commands = []
    for command in db.getAllCompileCommands():
        source = Path(command.filename)
        if not source.is_absolute():
            source = Path(command.directory) / source
        if path_filter(str(source)) is not None:
            commands.append((str(source), _clean_args(command)))

    sample_args = commands[0][1] if commands else ["-std=c++20"]
    for source, args in commands:
        try:
            tu = index.parse(source, args=args)
        except cindex.TranslationUnitLoadError as exc:
            log(f"astlint: failed to parse {source}: {exc}")
            continue
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            log(f"astlint: {source}: {fatal[0].spelling} "
                "(continuing with partial AST)")
        _walk_tu(cindex, tu, states, path_filter)

    headers = sorted(p.relative_to(repo).as_posix()
                     for p in (repo / "src").rglob("*.h")
                     if p.relative_to(repo).as_posix() not in SKIP_FILES)
    if headers:
        synthetic = "".join(f'#include "{h[len("src/"):]}"\n'
                            for h in headers)
        tu = index.parse("astlint_all_headers.cc", args=sample_args,
                         unsaved_files=[("astlint_all_headers.cc",
                                         synthetic)])
        _walk_tu(cindex, tu, states, path_filter)

    models = []
    for rel, state in sorted(states.items()):
        file_model = state.to_model()
        source = repo / rel
        if source.is_file():
            # Tier-6 facts: shared lexical extraction (see dataflow.py).
            dataflow.extract_into(file_model,
                                  source.read_text(encoding="utf-8"))
        models.append(file_model)
    return models
