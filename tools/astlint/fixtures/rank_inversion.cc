// astlint fixture: planted lock-order RANK INVERSION. The rank names
// resolve against the real enum in src/util/lock_rank.h (kMapStripe=500,
// kTaskGroup=200), so acquiring the group lock under a stripe lock is a
// strict-increase violation.
//
// Expected: exactly one lock-order violation (inversion 500 -> 200).

enum class LockRank { kUnranked, kTaskGroup, kMapStripe };

struct Mutex {
  explicit Mutex(LockRank rank);
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

class ProbePath {
 public:
  void Flush() {
    MutexLock stripe(stripe_mu_);
    MutexLock group(group_mu_);  // kTaskGroup(200) under kMapStripe(500)
  }

 private:
  Mutex stripe_mu_{LockRank::kMapStripe};
  Mutex group_mu_{LockRank::kTaskGroup};
};
