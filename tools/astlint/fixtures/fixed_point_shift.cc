// astlint fixture: fixed-point 2^53 cap for lineitem-path shifts (Tier 6).
//
// The pretend path src/data/lineitem_fixture.cc puts these shifts under the
// fixed-point rule: decimal quantities are scaled into doubles, so any
// integer magnitude produced here must stay exactly representable, i.e.
// strictly below 2^54. `1LL << 53` is the cap itself and is clean;
// `1LL << 54` exceeds it and is planted.

namespace memagg {

long long FixedPointCap() {
  return 1LL << 53;  // clean: largest exactly representable power
}

long long FixedPointOverflow() {
  return 1LL << 54;  // planted: exceeds the 2^53 double-exact range
}

}  // namespace memagg
