// astlint fixture: planted arena-escape violations (Tier 6 dataflow).
//
// Five pointers derived from function-local arenas outlive the arena:
// a direct return, a member store, a use after Reset(), a capture into an
// unjoined scheduled task, and a return of a pointer obtained through a
// helper (the returns-allocation call summary). MakeNode itself is clean:
// it allocates from a caller-owned arena parameter, which only produces
// the summary its call sites are judged by. Self-contained stubs so the
// AST frontend can parse this standalone.

namespace memagg {

struct Arena {
  template <typename T>
  T* New() {
    return nullptr;
  }
  void* AllocateBytes(unsigned long n) { return &n; }
  void Reset() {}
};

struct TaskGroup {
  template <typename F>
  void Submit(F f) {
    (void)f;
  }
  void Wait() {}
};

struct Node {
  int value;
};

Node* MakeNode(Arena& arena) {
  return arena.New<Node>();  // clean: caller owns the arena (summary only)
}

struct Cache {
  Node* stash_ = nullptr;

  Node* LeakReturn() {
    Arena scratch;
    Node* node = scratch.New<Node>();
    return node;  // planted: returns a local-arena allocation
  }

  void LeakStore() {
    Arena scratch;
    Node* node = scratch.New<Node>();
    stash_ = node;  // planted: member outlives the local arena
  }

  int UseAfterReset() {
    Arena scratch;
    Node* node = scratch.New<Node>();
    node->value = 1;
    scratch.Reset();
    return node->value;  // planted: node points into reset memory
  }

  void LeakIntoTask() {
    Arena scratch;
    TaskGroup group;
    Node* node = scratch.New<Node>();
    group.Submit([node] { node->value = 2; });  // planted: unjoined task
  }

  void JoinedTask() {
    Arena scratch;
    TaskGroup group;
    Node* node = scratch.New<Node>();
    group.Submit([node] { node->value = 3; });  // clean: Wait() below
    group.Wait();
  }

  Node* LeakViaHelper() {
    Arena scratch;
    Node* node = MakeNode(scratch);  // tainted via the call summary
    return node;  // planted: same escape, one call deep
  }
};

}  // namespace memagg
