// astlint fixture: clean Tier-6 dataflow shapes that must NOT fire.
//
// Exercises the non-escaping idioms: allocating from a caller-owned arena
// parameter (summary only), using an allocation strictly within the arena's
// lifetime, killing taint by reassigning after Reset(), returning a value
// read through the pointer (a deref is a copy out, not an escape), and a
// fan-out whose task group is joined before the frame unwinds.

namespace memagg {

struct Arena {
  template <typename T>
  T* New() {
    return nullptr;
  }
  void Reset() {}
};

struct TaskGroup {
  template <typename F>
  void Submit(F f) {
    (void)f;
  }
  void Wait() {}
};

struct Row {
  int value;
};

Row* Borrow(Arena& arena) {
  return arena.New<Row>();  // clean: caller owns the arena
}

int UseLocally() {
  Arena scratch;
  Row* row = scratch.New<Row>();
  row->value = 5;
  int result = row->value;
  scratch.Reset();
  row = scratch.New<Row>();  // reassignment kills the pre-Reset taint
  return result + row->value;
}

int JoinedFanOut(int* data, int count) {
  TaskGroup group;
  int sum = 0;
  group.Submit([&sum, data, count] {
    for (int i = 0; i < count; i++) sum += data[i];
  });
  group.Wait();
  return sum;
}

}  // namespace memagg
