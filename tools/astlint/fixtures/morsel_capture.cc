// astlint fixture: planted morsel-capture lifetime violations (Tier 6).
//
// Three by-reference captures are handed to task groups that are never
// joined in a scope that dominates the captured frame: a default [&]
// capture, a named &counter capture, and an unjoined call into a helper
// whose requires-join summary says the caller must Wait(). FanOutBody's
// own recursive Submit is clean (the summary charges the root call site),
// and FanOutJoined / JoinedRefCapture / ValueCapture show the joined and
// by-value shapes the rule must not flag.

namespace memagg {

struct TaskGroup {
  template <typename F>
  void Submit(F f) {
    (void)f;
  }
  void Wait() {}
};

void FanOutBody(TaskGroup& group, int* data, int count) {
  if (count < 2) return;
  int half = count / 2;
  group.Submit([&group, data, half] {  // clean: summary, root site joins
    FanOutBody(group, data, half);
  });
  FanOutBody(group, data + half, count - half);
}

void FanOutJoined(int* data, int count) {
  TaskGroup group;
  FanOutBody(group, data, count);  // clean: Wait() below
  group.Wait();
}

void FanOutLeaky(int* data, int count) {
  TaskGroup group;
  FanOutBody(group, data, count);  // planted: requires-join, never joined
}

void DefaultRefCapture(TaskGroup& group) {
  int counter = 0;
  group.Submit([&] { counter++; });  // planted: [&] into caller's group
}

void NamedRefCapture() {
  TaskGroup group;
  int counter = 0;
  group.Submit([&counter] { counter++; });  // planted: unjoined &counter
}

void JoinedRefCapture() {
  TaskGroup group;
  int counter = 0;
  group.Submit([&counter] { counter++; });  // clean: Wait() below
  group.Wait();
}

void ValueCapture() {
  TaskGroup group;
  int seed = 42;
  group.Submit([seed] { (void)seed; });  // clean: by-value capture
}

}  // namespace memagg
