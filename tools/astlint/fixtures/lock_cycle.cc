// astlint fixture: planted lock-order CYCLE (unranked ABBA deadlock).
// Self-contained so the AST frontend can parse it with no include paths;
// the stub guard classes mirror util/mutex.h's shape.
//
// Expected: exactly one lock-order violation (cycle alpha_ <-> beta_).

struct Mutex {
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

class Registry {
 public:
  void RegisterThenPublish() {
    MutexLock reg(alpha_);
    MutexLock pub(beta_);  // alpha_ -> beta_
  }
  void PublishThenRegister() {
    MutexLock pub(beta_);
    MutexLock reg(alpha_);  // beta_ -> alpha_: closes the ABBA cycle
  }

 private:
  Mutex alpha_;
  Mutex beta_;
};
