// astlint fixture: planted BLOCKING calls inside a morsel body. Each of the
// four flagged constructs parks or serializes the worker that runs the
// morsel: a parking mutex, a cross-task wait, the global allocator lock,
// and stdio.
//
// Expected: exactly four blocking-in-morsel-body violations.

struct Morsel {
  unsigned long index;
  unsigned long begin;
  unsigned long end;
  int worker;
};

struct Mutex {
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

struct TaskGroup {
  void Wait();
};

extern "C" int printf(const char* fmt, ...);

template <typename Fn>
void ParallelFor(unsigned long n, Fn fn) {
  Morsel morsel{0, 0, n, 0};
  fn(morsel);
}

Mutex merge_mu;

void RunQuery(TaskGroup& flushers) {
  unsigned long total = 0;
  ParallelFor(1024, [&](const Morsel& m) {
    MutexLock merge(merge_mu);                      // parks the worker
    long* scratch = new long[m.end - m.begin];      // global allocator lock
    flushers.Wait();                                // cross-task wait
    printf("morsel %lu\n", m.index);                // I/O
    for (unsigned long i = m.begin; i < m.end; ++i) total += scratch[0];
    delete[] scratch;
  });
}
