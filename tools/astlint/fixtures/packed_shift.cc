// astlint fixture: planted packed-shift width violations (Tier 6).
//
// The struct names PackedKeyCodec and DictKeyCodec put these shifts under
// the planner's symbolic width facts (packed plan fields stay within 63
// bits; dict composite widths may reach 128). Three shifts are planted:
// a 32-bit literal shifted by 40, a 64-bit mask build whose symbolic
// amount can reach 64, and a shift by a runtime amount no fact bounds.
// The guarded mask (`plan.bits == 64 ? ... :`) shows the ternary-guard
// refinement keeping the idiomatic branch clean.

namespace memagg {

using EncodedKey = unsigned long long;

struct KeyFieldPlan {
  int bits;
};

struct PackedKeyCodec {
  EncodedKey Fold(EncodedKey key, const KeyFieldPlan& plan) {
    key = (key << plan.bits) | 1u;       // clean: packed bits stay <= 63
    EncodedKey hi = 1ULL << 63;          // clean: max legal u64 shift
    EncodedKey bad = 1 << 40;            // planted: 32-bit operand
    return key ^ hi ^ bad;
  }
};

struct DictKeyCodec {
  unsigned __int128 Fold(unsigned __int128 composite, const KeyFieldPlan& plan,
                         int runtime_bits) {
    composite = composite << plan.bits;  // clean: 128-bit operand
    EncodedKey mask =
        plan.bits == 64 ? ~0ULL : (1ULL << plan.bits) - 1;  // clean: guarded
    EncodedKey probe = 1ULL << plan.bits;     // planted: bits can reach 64
    EncodedKey loose = 1ULL << runtime_bits;  // planted: unbounded amount
    return composite ^ mask ^ probe ^ loose;
  }
};

}  // namespace memagg
