// astlint fixture: planted STATS RECORDING inside a morsel body. Per-morsel
// shard lookups serialize workers on the registry; the sanctioned pattern
// accumulates locally and flushes once per worker.
//
// Expected: exactly one stats-in-morsel-body violation.

struct Morsel {
  unsigned long index;
  unsigned long begin;
  unsigned long end;
  int worker;
};

struct WorkerStats {
  unsigned long rows = 0;
};

struct StatsRegistry {
  WorkerStats& WorkerShard(int worker);
};

template <typename Fn>
void ParallelFor(unsigned long n, Fn fn) {
  Morsel morsel{0, 0, n, 0};
  fn(morsel);
}

void RunQuery(StatsRegistry& registry) {
  ParallelFor(1024, [&registry](const Morsel& m) {
    registry.WorkerShard(m.worker).rows += m.end - m.begin;  // per-morsel
  });
}
