// astlint fixture: CLEAN file exercising the legal twins of every rule —
// strictly ascending rank acquisition, a spinning guard inside a morsel
// body (the sanctioned protection for shared aggregate state), local
// accumulation instead of per-morsel stats, and aggregator construction
// through the AdaptiveAggregator entry point.
//
// Expected: zero violations.

enum class LockRank { kUnranked, kTaskGroup, kMapStripe };

struct Mutex {
  explicit Mutex(LockRank rank);
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

struct SpinLock {
  void lock();
  void unlock();
};

class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock);
  ~SpinLockGuard();
};

struct Morsel {
  unsigned long index;
  unsigned long begin;
  unsigned long end;
  int worker;
};

template <typename Fn>
void ParallelFor(unsigned long n, Fn fn) {
  Morsel morsel{0, 0, n, 0};
  fn(morsel);
}

namespace std {
template <typename T>
struct unique_ptr {
  T* ptr;
};
template <typename T, typename... Args>
unique_ptr<T> make_unique(Args&&... args);
}  // namespace std

template <typename Agg>
struct AdaptiveAggregator {
  Agg state;
};

struct CountAggregate {
  unsigned long count = 0;
};

class CleanPipeline {
 public:
  void Drain() {
    MutexLock group(group_mu_);
    MutexLock stripe(stripe_mu_);  // 200 -> 500: strictly increasing
  }

  void Aggregate() {
    ParallelFor(1024, [this](const Morsel& m) {
      unsigned long local = m.end - m.begin;  // accumulate locally
      SpinLockGuard guard(cell_);             // spinning guard: sanctioned
      rows_ += local;
    });
  }

  auto MakeOperator() {
    return std::make_unique<AdaptiveAggregator<CountAggregate>>();
  }

 private:
  Mutex group_mu_{LockRank::kTaskGroup};
  Mutex stripe_mu_{LockRank::kMapStripe};
  SpinLock cell_;
  unsigned long rows_ = 0;
};
