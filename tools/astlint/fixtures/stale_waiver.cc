// astlint fixture: stale-waiver meta-rule (Tier 6).
//
// One waiver below names lock-order but sits over plain code with no lock
// acquisition edge, so the waiver itself is the planted violation: the
// condition it excused no longer exists and the waiver must be deleted.
// Sanctioned() shows the opposite case — a live arena-escape waiver whose
// underlying fact is still present, which both suppresses the finding and
// keeps the waiver off the stale list.

namespace memagg {

struct Arena {
  template <typename T>
  T* New() {
    return nullptr;
  }
};

struct Slot {
  int value;
};

int Renamed() {
  // astlint:allow(lock-order): stale - the nested acquisition was removed
  int total = 0;
  for (int i = 0; i < 4; i++) total += i;
  return total;
}

Slot* Sanctioned() {
  Arena scratch;
  Slot* slot = scratch.New<Slot>();
  // astlint:allow(arena-escape): fixture - demonstrates a live waiver
  return slot;
}

}  // namespace memagg
