// astlint fixture: planted SAME-RANK nesting on a rank with no sanctioned
// protocol. kMapStripe (StripedMap) holds exactly one stripe at a time; two
// at once from different threads in different orders is a latent ABBA
// deadlock, so the rank table does not carry the same-rank marker for it.
//
// Expected: exactly one lock-order violation (same-rank without protocol).

enum class LockRank { kUnranked, kMapStripe };

struct Mutex {
  explicit Mutex(LockRank rank);
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

class DoubleStripe {
 public:
  void MoveEntry() {
    MutexLock from(from_stripe_);
    MutexLock to(to_stripe_);  // second kMapStripe while one is held
  }

 private:
  Mutex from_stripe_{LockRank::kMapStripe};
  Mutex to_stripe_{LockRank::kMapStripe};
};
