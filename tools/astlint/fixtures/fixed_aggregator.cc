// astlint fixture: planted FIXED AGGREGATOR construction outside the
// sanctioned factories. Direct construction pins the operator choice at the
// call site; the engine routes it through MakeVectorAggregator or
// AdaptiveAggregator so strategy selection stays in one place.
//
// Expected: exactly one fixed-aggregator-construction violation.

namespace std {
template <typename T>
struct unique_ptr {
  T* ptr;
};
template <typename T, typename... Args>
unique_ptr<T> make_unique(Args&&... args);
}  // namespace std

template <typename Agg>
struct SortedAggregator {
  Agg state;
};

struct CountAggregate {
  unsigned long count = 0;
};

auto MakeHardcodedOperator() {
  return std::make_unique<SortedAggregator<CountAggregate>>();  // planted
}
