"""Common analysis model shared by the astlint frontends.

A frontend (ast_frontend.py over libclang, lex_frontend.py over raw text)
reduces each source file to a FileModel — acquires-while-holding edges,
flagged calls inside morsel bodies, and aggregator constructions. The rules
in this module run over FileModels only, so both frontends are checked by
the same fixtures and report identical violation shapes.

Lock identity: a lock is named by the member (or variable) it is declared
as, with array indexes collapsed (`locks_[s1]` -> `locks_[]`) and access
paths dropped (`state_->mutex` -> `mutex`), qualified by the file that
declares its rank when known. Ranks are read from src/util/lock_rank.h (the
enum is the single source of truth; `lockrank:same-rank` comments mark
address-ordered families) and from rank declarations in the source —
`Mutex m{LockRank::kX}`, `SpinLock s(LockRank::kX)`, `x[i].SetRank(
LockRank::kX)` — which are declarative text, so rank extraction is lexical
in both modes.
"""

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

# The locking primitives themselves: their internals (mu_.lock() inside
# Mutex::Lock) are the mechanism, not a protocol to analyze.
SKIP_FILES = (
    "src/util/mutex.h",
    "src/util/spinlock.h",
    "src/util/lock_rank.h",
    "src/util/thread_annotations.h",
)

# Lock-expression aliases for locks reached through pointers whose names
# differ from the declared member. CuckooMap::StripePair caches SpinLock*
# into its two stripe slots; both point into the locks_ array.
LOCK_ALIASES = {
    "cuckoo_map.h": {"first_": "locks_[]", "second_": "locks_[]"},
}

# Guard classes that acquire on construction, and whether the acquisition is
# shared. StripePair is repo-specific: it acquires (up to) two entries of
# CuckooMap::locks_ in index order.
GUARD_CLASSES = {
    "MutexLock": False,
    "WriterMutexLock": False,
    "ReaderMutexLock": True,
    "SpinLockGuard": False,
    "lock_guard": False,
    "unique_lock": False,
    "scoped_lock": False,
    "shared_lock": True,
}
STRIPE_GUARD = "StripePair"

# Fixed-aggregator rule scoping (mirrors tools/lint_invariants.py).
FIXED_AGG_EXEMPT_FILES = (
    "src/core/engine.cc",
    "src/core/migratable.h",
    "src/sim/traced_engine.cc",
)


def canon_lock(expr, file_name):
    """Canonical lock name for a source expression: `state_->mutex` ->
    `mutex`, `this->locks_[s1]` -> `locks_[]`, `*first_` -> `first_`."""
    expr = expr.strip()
    expr = re.sub(r"\[[^\]]*\]", "[]", expr)
    parts = re.split(r"->|\.", expr)
    name = parts[-1].strip().lstrip("*&").strip()
    name = LOCK_ALIASES.get(file_name, {}).get(name, name)
    return name


@dataclass(frozen=True)
class AcquireEdge:
    """`acquired` was acquired while `held` was held (both canonical names,
    unqualified — qualification happens against the rank table)."""
    held: str
    acquired: str
    file: str  # repo-relative path of the acquisition site
    line: int


@dataclass(frozen=True)
class MorselFlag:
    """A flagged construct inside a ParallelFor/morsel lambda body."""
    kind: str  # blocking-lock | wait | global-new | io | stats
    detail: str
    file: str
    line: int


@dataclass(frozen=True)
class AggregatorConstruction:
    name: str
    file: str
    line: int


@dataclass(frozen=True)
class ArenaEscape:
    """A pointer allocated from a function-local arena outliving it (Tier 6,
    produced by dataflow.link)."""
    kind: str      # return | store | task-capture | use-after-reset
    pointer: str   # the escaping variable ("<temporary>" for bare returns)
    arena: str     # the owning local arena variable
    function: str
    file: str
    line: int
    detail: str


@dataclass(frozen=True)
class TaskCapture:
    """A by-reference capture handed to an unjoined scheduled task, or an
    unmet requires-join obligation at a call site (Tier 6)."""
    variable: str  # "&local", "[&]", or the unjoined group at a call site
    receiver: str  # normalized Submit/Schedule receiver chain
    function: str
    file: str
    line: int
    detail: str


@dataclass(frozen=True)
class ShiftSite:
    """One shift expression in the packed-key scope, with the symbolic
    amount interval and inferred operand width (Tier 6)."""
    op: str            # "<<" or ">>"
    operand: str
    operand_bits: int
    amount: str
    amount_min: int
    amount_max: int    # dataflow.UNKNOWN when no width fact applies
    ok: bool
    file: str
    line: int


@dataclass
class FileModel:
    path: str  # repo-relative (or pretend path, for fixtures)
    edges: list = field(default_factory=list)
    morsel_flags: list = field(default_factory=list)
    aggregator_constructions: list = field(default_factory=list)
    # Tier-6 dataflow facts. `functions` (FuncModels) is filled per-file by
    # dataflow.extract_into; the finding lists are filled repo-wide by
    # dataflow.link once call summaries reach a fixpoint.
    functions: list = field(default_factory=list)
    arena_escapes: list = field(default_factory=list)
    task_captures: list = field(default_factory=list)
    shift_sites: list = field(default_factory=list)


# --- Rank table --------------------------------------------------------------

ENUM_ENTRY_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*,?(.*)")
# Declarations may carry thread-safety annotations between the name and the
# rank initializer: `Mutex eviction_mutex_ ACQUIRED_AFTER(resize_mutex_){...}`.
RANK_BRACE_DECL_RE = re.compile(
    r"\b(?:Mutex|SharedMutex|SpinLock)\s+(\w+)\s*"
    r"(?:\w+\s*\([^()]*\)\s*)*"
    r"[({]\s*LockRank::k(\w+)\s*[)}]"
)
RANK_SETRANK_RE = re.compile(
    r"\b(\w+)\s*(\[[^\]]*\])?\s*\.\s*SetRank\s*\(\s*LockRank::k(\w+)")


class RankTable:
    """Rank values from lock_rank.h plus per-lock rank declarations."""

    def __init__(self):
        self.values = {}         # rank name (kX) -> int
        self.same_rank = set()   # rank names with a sanctioned protocol
        self.decls = []          # (file_name, lock_name, rank_name)

    @classmethod
    def load(cls, repo=REPO, extra_texts=()):
        """Parses the enum from src/util/lock_rank.h and rank declarations
        from every src/ file (plus `extra_texts`: (file_name, text) pairs,
        used for fixtures)."""
        table = cls()
        header = repo / "src/util/lock_rank.h"
        if header.is_file():
            table.parse_enum(header.read_text(encoding="utf-8"))
        for path in sorted((repo / "src").rglob("*")):
            if path.suffix in (".h", ".cc"):
                table.parse_decls(path.name, path.read_text(encoding="utf-8"))
        for file_name, text in extra_texts:
            table.parse_decls(file_name, text)
        return table

    def parse_enum(self, text):
        in_enum = False
        for line in text.splitlines():
            if "enum class LockRank" in line:
                in_enum = True
            if not in_enum:
                continue
            match = ENUM_ENTRY_RE.search(line)
            if match:
                name = "k" + match.group(1)
                self.values[name] = int(match.group(2))
                if "lockrank:same-rank" in match.group(3):
                    self.same_rank.add(name)
            if "};" in line:
                break

    def parse_decls(self, file_name, text):
        for match in RANK_BRACE_DECL_RE.finditer(text):
            self.decls.append((file_name, match.group(1), "k" + match.group(2)))
        for match in RANK_SETRANK_RE.finditer(text):
            lock = match.group(1) + ("[]" if match.group(2) else "")
            self.decls.append((file_name, lock, "k" + match.group(3)))

    def resolve(self, file_path, lock_name):
        """(qualified id, rank name or None). Prefers a rank declaration in
        the same file; falls back to a unique cross-file declaration (locks
        acquired in a .cc but declared in the .h)."""
        file_name = Path(file_path).name
        same_file = [d for d in self.decls
                     if d[0] == file_name and d[1] == lock_name]
        if same_file:
            return f"{file_name}:{lock_name}", same_file[0][2]
        elsewhere = {(d[0], d[2]) for d in self.decls if d[1] == lock_name}
        if len(elsewhere) == 1:
            decl_file, rank = next(iter(elsewhere))
            return f"{decl_file}:{lock_name}", rank
        return f"{file_name}:{lock_name}", None

    def rank_value(self, rank_name):
        return self.values.get(rank_name)

    def allows_same_rank(self, rank_name):
        return rank_name in self.same_rank


# --- Rules -------------------------------------------------------------------

RULE_LOCK_ORDER = "lock-order"
RULE_BLOCKING = "blocking-in-morsel-body"
RULE_STATS = "stats-in-morsel-body"
RULE_FIXED_AGG = "fixed-aggregator-construction"
RULE_ARENA_ESCAPE = "arena-escape"
RULE_TASK_CAPTURE = "morsel-capture"
RULE_PACKED_SHIFT = "packed-shift"
ALL_RULES = (RULE_LOCK_ORDER, RULE_BLOCKING, RULE_STATS, RULE_FIXED_AGG,
             RULE_ARENA_ESCAPE, RULE_TASK_CAPTURE, RULE_PACKED_SHIFT)

BLOCKING_KINDS = ("blocking-lock", "wait", "global-new", "io")


@dataclass(frozen=True)
class Violation:
    file: str
    line: int
    rule: str
    message: str


def build_lock_graph(models, ranks):
    """Resolves every edge against the rank table. Returns (nodes, edges)
    where nodes maps qualified id -> rank name (or None) and edges is a list
    of dicts (held/acquired ids, location, ranks)."""
    nodes, edges = {}, []
    for model in models:
        for edge in model.edges:
            held_id, held_rank = ranks.resolve(edge.file, edge.held)
            acq_id, acq_rank = ranks.resolve(edge.file, edge.acquired)
            nodes.setdefault(held_id, held_rank)
            nodes.setdefault(acq_id, acq_rank)
            edges.append({
                "held": held_id, "held_rank": held_rank,
                "acquired": acq_id, "acquired_rank": acq_rank,
                "file": edge.file, "line": edge.line,
            })
    return nodes, edges


def find_cycles(edges, allows_same_rank):
    """Every elementary cycle in the acquires-while-holding graph, as node
    tuples canonicalized to start at the smallest id. A self-edge sanctioned
    by a same-rank protocol is not a cycle (address order breaks the tie)."""
    adjacency = {}
    for edge in edges:
        if edge["held"] != edge["acquired"]:
            adjacency.setdefault(edge["held"], set()).add(edge["acquired"])
    cycles = set()

    def walk(node, path, on_path):
        for succ in sorted(adjacency.get(node, ())):
            if succ == path[0]:
                cycles.add(tuple(path))
            elif succ not in on_path and succ > path[0]:
                # Only explore ids > the root: every cycle is found exactly
                # once, rooted at its smallest node.
                walk(succ, path + [succ], on_path | {succ})

    for edge in edges:
        if edge["held"] == edge["acquired"]:
            rank = edge["held_rank"]
            if rank is None or not allows_same_rank(rank):
                cycles.add((edge["held"],))
    for node in sorted(adjacency):
        walk(node, [node], {node})
    return sorted(cycles)


def check_lock_order(models, ranks):
    nodes, edges = build_lock_graph(models, ranks)
    del nodes
    violations = []
    for cycle in find_cycles(edges, ranks.allows_same_rank):
        members = set(cycle)
        site = min(
            (e for e in edges
             if e["held"] in members and e["acquired"] in members),
            key=lambda e: (e["file"], e["line"]))
        violations.append(Violation(
            site["file"], site["line"], RULE_LOCK_ORDER,
            "acquires-while-holding cycle: " + " -> ".join(
                cycle + (cycle[0],)) +
            " — a deadlock under the right interleaving; break the cycle or "
            "sanction it with a rank protocol"))
    for edge in edges:
        held_rank, acq_rank = edge["held_rank"], edge["acquired_rank"]
        if held_rank is None or acq_rank is None:
            continue
        held_value = ranks.rank_value(held_rank)
        acq_value = ranks.rank_value(acq_rank)
        if held_value is None or acq_value is None:
            continue
        if acq_value < held_value:
            violations.append(Violation(
                edge["file"], edge["line"], RULE_LOCK_ORDER,
                f"rank inversion: acquiring {edge['acquired']} "
                f"({acq_rank}={acq_value}) while holding {edge['held']} "
                f"({held_rank}={held_value}) — ranks must strictly increase"))
        elif (acq_value == held_value and edge["held"] != edge["acquired"]
              and not ranks.allows_same_rank(acq_rank)):
            violations.append(Violation(
                edge["file"], edge["line"], RULE_LOCK_ORDER,
                f"same-rank acquisition: {edge['acquired']} while holding "
                f"{edge['held']} (both {held_rank}) without a same-rank "
                "protocol"))
    return violations


def check_morsel_rules(models, _ranks):
    violations = []
    for model in models:
        if not model.path.startswith(("src/", "bench/", "examples/")):
            continue
        for flag in model.morsel_flags:
            if flag.kind in BLOCKING_KINDS:
                violations.append(Violation(
                    flag.file, flag.line, RULE_BLOCKING,
                    f"{flag.detail} inside a morsel body — morsel bodies "
                    "must not block (park on a mutex, wait on a group, hit "
                    "the global allocator, or do I/O); hoist it to the "
                    "per-worker setup or use the worker's arena"))
            elif flag.kind == "stats":
                violations.append(Violation(
                    flag.file, flag.line, RULE_STATS,
                    f"{flag.detail} inside a morsel body — accumulate "
                    "locally and flush once per worker (see "
                    "Executor::RecordWorkerClaims)"))
    return violations


def check_fixed_aggregator(models, _ranks):
    violations = []
    for model in models:
        path = model.path
        if not path.startswith(("src/", "bench/", "examples/")):
            continue
        if path in FIXED_AGG_EXEMPT_FILES:
            continue
        if path.startswith("src/core/") and path.endswith("_aggregator.h"):
            continue
        for ctor in model.aggregator_constructions:
            if ctor.name == "AdaptiveAggregator":
                continue
            violations.append(Violation(
                ctor.file, ctor.line, RULE_FIXED_AGG,
                f"direct construction of {ctor.name} — route operator "
                "choice through MakeVectorAggregator (core/engine.h) or "
                "AdaptiveAggregator"))
    return violations


LINTED_PREFIXES = ("src/", "bench/", "examples/")


def check_arena_escape(models, _ranks):
    violations = []
    for model in models:
        if not model.path.startswith(LINTED_PREFIXES):
            continue
        for escape in model.arena_escapes:
            violations.append(Violation(
                escape.file, escape.line, RULE_ARENA_ESCAPE,
                f"{escape.function}: {escape.detail} — the pointer outlives "
                f"the arena's Reset()/destruction; allocate from a "
                "caller-owned arena or copy out before the scope ends"))
    return violations


def check_task_capture(models, _ranks):
    violations = []
    for model in models:
        if not model.path.startswith(LINTED_PREFIXES):
            continue
        for capture in model.task_captures:
            violations.append(Violation(
                capture.file, capture.line, RULE_TASK_CAPTURE,
                f"{capture.function}: {capture.detail} — the task can "
                "outlive the captured frame; join with Wait() before the "
                "scope ends or capture by value"))
    return violations


def check_packed_shift(models, _ranks):
    violations = []
    for model in models:
        if not model.path.startswith(LINTED_PREFIXES):
            continue
        for site in model.shift_sites:
            if site.ok:
                continue
            if site.amount_max >= 10 ** 9:
                reason = (f"no width fact bounds '{site.amount}' — shifting "
                          f"a {site.operand_bits}-bit operand by an "
                          "unbounded amount is UB at the operand width")
            else:
                reason = (f"amount '{site.amount}' can reach "
                          f"{site.amount_max} on a {site.operand_bits}-bit "
                          "operand — shifts of >= operand width are UB")
            violations.append(Violation(
                site.file, site.line, RULE_PACKED_SHIFT,
                f"'{site.operand} {site.op} {site.amount}': {reason}; "
                "narrow the plan (PackedKeyCodec::TryBuild caps totals "
                "below kEncodedKeyBits) or guard the boundary value"))
    return violations


RULE_CHECKS = (check_lock_order, check_morsel_rules, check_fixed_aggregator,
               check_arena_escape, check_task_capture, check_packed_shift)


def run_rules(models, ranks):
    violations = []
    for check in RULE_CHECKS:
        violations.extend(check(models, ranks))
    return sorted(violations, key=lambda v: (v.file, v.line, v.rule))


def graph_json(models, ranks):
    """The acquires-while-holding graph as a JSON string (the CI artifact).
    Nodes include every rank-declared lock, even ones with no edges, so the
    artifact doubles as the repo's lock-rank map."""
    nodes, edges = build_lock_graph(models, ranks)
    for decl_file, lock_name, rank_name in ranks.decls:
        nodes.setdefault(f"{decl_file}:{lock_name}", rank_name)
    return json.dumps({
        "nodes": [
            {"id": node, "rank": rank,
             "rank_value": ranks.rank_value(rank) if rank else None,
             "same_rank_ok": bool(rank and ranks.allows_same_rank(rank))}
            for node, rank in sorted(nodes.items())
        ],
        "edges": sorted(edges, key=lambda e: (e["file"], e["line"])),
    }, indent=2)


def dataflow_json(models):
    """The Tier-6 dataflow facts as a JSON string (the astlint_dataflow.json
    CI artifact): every arena escape, task capture, and shift site — shift
    sites including the *clean* ones, so the artifact records the full
    audited set, not just failures."""
    escapes, captures, shifts = [], [], []
    functions = 0
    for model in sorted(models, key=lambda m: m.path):
        functions += len(model.functions)
        for e in model.arena_escapes:
            escapes.append({
                "kind": e.kind, "pointer": e.pointer, "arena": e.arena,
                "function": e.function, "file": e.file, "line": e.line,
                "detail": e.detail})
        for c in model.task_captures:
            captures.append({
                "variable": c.variable, "receiver": c.receiver,
                "function": c.function, "file": c.file, "line": c.line,
                "detail": c.detail})
        for s in model.shift_sites:
            shifts.append({
                "op": s.op, "operand": s.operand,
                "operand_bits": s.operand_bits, "amount": s.amount,
                "amount_min": s.amount_min,
                "amount_max": (None if s.amount_max >= 10 ** 9
                               else s.amount_max),
                "ok": s.ok, "file": s.file, "line": s.line})
    return json.dumps({
        "schema": "astlint-dataflow-v1",
        "functions_analyzed": functions,
        "arena_escapes": escapes,
        "task_captures": captures,
        "shift_sites": shifts,
    }, indent=2)
