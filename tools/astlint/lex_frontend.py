"""Lexical fallback frontend for astlint.

Reduces a source file to a FileModel without an AST: comments and strings
are blanked (preserving line breaks), lock events (guard constructions,
direct Lock/Unlock calls, REQUIRES entry conditions) are located by regex,
and a brace-scope walk replays them to find what was held at each
acquisition. Morsel-body and aggregator rules reuse the span matching that
tools/lint_invariants.py established.

The walk understands the repo's idioms:
  * RAII guards (MutexLock, SpinLockGuard, std::lock_guard, ...) hold from
    their declaration to the end of the enclosing brace scope.
  * Direct .Lock()/.Unlock() pairs (TaskGroup's DrainLocked) add/remove by
    canonical lock name, so unlock-run-relock windows hold nothing.
  * REQUIRES(x)/REQUIRES_SHARED(x) on a definition seeds the body scope
    with x already held (CuckooMap's MakeSpace and rehash helpers).
  * A StripePair construction acquires the aliased stripe family once; the
    pair's internal ordered locking shows up as a sanctioned same-rank
    self-edge from the ctor body itself.
try_lock acquisitions are recorded as held but emit no edges: they cannot
block, but a later blocking acquisition under them can.
"""

import re
from pathlib import Path

import dataflow
from model import (AcquireEdge, AggregatorConstruction, FileModel,
                   GUARD_CLASSES, MorselFlag, STRIPE_GUARD, canon_lock)


# --- Text utilities (same contract as tools/lint_invariants.py) --------------

def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line breaks
    so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_brace_span(text, open_brace):
    """Returns the offset one past the brace matching text[open_brace]."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# --- Lock-event patterns -----------------------------------------------------

# A member-access chain: `mu`, `locks_[s]`, `state_->mutex`, `map.locks_[s1]`.
RECEIVER = (r"[A-Za-z_]\w*(?:\s*\[[^\]]*\])?"
            r"(?:\s*(?:->|\.)\s*[A-Za-z_]\w*(?:\s*\[[^\]]*\])?)*")

GUARD_RE = re.compile(
    r"\b(?:std::)?(" + "|".join(GUARD_CLASSES) + r")\s*(?:<[^;>{}]*>)?"
    r"\s+\w+\s*[({]([^;)}]*)[)}]")
STRIPE_RE = re.compile(r"\b" + STRIPE_GUARD + r"\s+\w+\s*\(")
DIRECT_LOCK_RE = re.compile(
    rf"\b({RECEIVER})\s*(?:->|\.)\s*(Lock|LockShared|lock)\s*\(\s*\)")
DIRECT_TRY_RE = re.compile(
    rf"\b({RECEIVER})\s*(?:->|\.)\s*(TryLock|try_lock)\s*\(\s*\)")
DIRECT_UNLOCK_RE = re.compile(
    rf"\b({RECEIVER})\s*(?:->|\.)\s*(Unlock|UnlockShared|unlock)\s*\(\s*\)")
REQUIRES_RE = re.compile(r"\b(?:REQUIRES|REQUIRES_SHARED)\s*\(([^)]*)\)")

# Guards that park the calling thread (flagged inside morsel bodies).
# SpinLockGuard and StripePair spin under a bounded protocol and are the
# sanctioned way aggregate state is protected inside morsel bodies.
BLOCKING_GUARDS = tuple(g for g in GUARD_CLASSES if g != "SpinLockGuard")

BLOCKING_GUARD_RE = re.compile(
    r"\b(?:std::)?(" + "|".join(BLOCKING_GUARDS) + r")\s*(?:<[^;>{}]*>)?"
    r"\s+\w+\s*[({]")
BLOCKING_CALL_RE = re.compile(
    rf"\b{RECEIVER}\s*(?:->|\.)\s*(Lock|LockShared)\s*\(")
WAIT_RE = re.compile(rf"\b{RECEIVER}\s*(?:->|\.)\s*Wait\s*\(")
GLOBAL_NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")
IO_RE = re.compile(
    r"\b(?:printf|fprintf|fopen|fwrite|fputs|puts)\s*\("
    r"|std::(?:cout|cerr)\b|\bofstream\b")
MORSEL_LAMBDA_RE = re.compile(r"\(\s*const\s+Morsel\s*&")
STATS_CALL_RE = re.compile(
    r"StatCounter::|PhaseTimer\b|\bAddPhase\s*\(|\bWorkerShard\s*\(")
FIXED_AGG_CONSTRUCT_RE = re.compile(
    r"(?:std::make_unique\s*<\s*|new\s+)([A-Z]\w*Aggregator)\s*<"
    r"|\b([A-Z]\w*Aggregator)\s*<[\w:<>,\s]*>\s+\w+\s*[({]")


# --- Lock-graph extraction ---------------------------------------------------

def collect_lock_events(stripped, file_name):
    """(events, entry_held): events are (offset, kind, lock_name, lineno)
    with kind in {acquire, try, release}; entry_held maps a body-open brace
    offset to the locks REQUIRES() says are held on entry."""
    events = []

    def add(offset, kind, expr):
        name = canon_lock(expr, file_name)
        if name:
            events.append((offset, kind, name, line_of(stripped, offset)))

    for match in GUARD_RE.finditer(stripped):
        for arg in match.group(2).split(","):
            arg = arg.strip()
            if not arg or arg.startswith("std::"):
                continue  # std::defer_lock and friends.
            add(match.start(), "acquire", arg)
    for match in STRIPE_RE.finditer(stripped):
        add(match.start(), "acquire", "first_")  # Aliased stripe family.
    for match in DIRECT_LOCK_RE.finditer(stripped):
        add(match.start(), "acquire", match.group(1))
    for match in DIRECT_TRY_RE.finditer(stripped):
        add(match.start(), "try", match.group(1))
    for match in DIRECT_UNLOCK_RE.finditer(stripped):
        add(match.start(), "release", match.group(1))

    entry_held = {}
    for match in REQUIRES_RE.finditer(stripped):
        brace = stripped.find("{", match.end())
        if brace == -1:
            continue
        if ";" in stripped[match.end():brace]:
            continue  # Declaration without a body here.
        names = [canon_lock(a.strip(), file_name)
                 for a in match.group(1).split(",") if a.strip()]
        entry_held.setdefault(brace, []).extend(n for n in names if n)
    return events, entry_held


def replay_scopes(stripped, events, entry_held, path):
    """Replays lock events against the brace structure; emits an edge
    held -> acquired for every blocking acquisition made under a held lock.
    Guard acquisitions die with their scope; direct Lock()s die at their
    Unlock() (or, defensively, at scope end)."""
    actions = []
    for i, c in enumerate(stripped):
        if c == "{":
            actions.append((i, 0, "open", None))
        elif c == "}":
            actions.append((i, 0, "close", None))
    for offset, kind, name, lineno in events:
        actions.append((offset, 1, kind, (name, lineno)))
    actions.sort()

    stack = [[]]
    edges = []
    for offset, _, kind, payload in actions:
        if kind == "open":
            stack.append(list(entry_held.get(offset, ())))
        elif kind == "close":
            if len(stack) > 1:
                stack.pop()
        elif kind in ("acquire", "try"):
            name, lineno = payload
            if kind == "acquire":
                for scope in stack:
                    for held in scope:
                        edges.append(AcquireEdge(held, name, path, lineno))
            stack[-1].append(name)
        else:  # release
            name, _ = payload
            for scope in reversed(stack):
                if name in scope:
                    for i in range(len(scope) - 1, -1, -1):
                        if scope[i] == name:
                            del scope[i]
                            break
                    break
    seen = set()
    unique = []
    for edge in edges:
        if edge not in seen:
            seen.add(edge)
            unique.append(edge)
    return unique


# --- Morsel-body and aggregator extraction -----------------------------------

def morsel_body_spans(stripped):
    for match in MORSEL_LAMBDA_RE.finditer(stripped):
        open_brace = stripped.find("{", match.end())
        if open_brace != -1:
            yield open_brace, match_brace_span(stripped, open_brace)


def collect_morsel_flags(stripped, path):
    flags = []
    for begin, end in morsel_body_spans(stripped):
        body_checks = (
            (BLOCKING_GUARD_RE, "blocking-lock",
             lambda m: f"{m.group(1)} acquisition (parks the worker)"),
            (BLOCKING_CALL_RE, "blocking-lock",
             lambda m: f"blocking {m.group(1)}() call"),
            (WAIT_RE, "wait", lambda m: "Wait() on a task group or pool"),
            (GLOBAL_NEW_RE, "global-new",
             lambda m: "allocating `new` (global allocator lock)"),
            (IO_RE, "io", lambda m: "I/O call"),
            (STATS_CALL_RE, "stats", lambda m: "stats recording"),
        )
        for pattern, kind, detail in body_checks:
            for match in pattern.finditer(stripped, begin, end):
                flags.append(MorselFlag(kind, detail(match), path,
                                        line_of(stripped, match.start())))
    return flags


def collect_aggregator_constructions(stripped, path):
    ctors = []
    for match in FIXED_AGG_CONSTRUCT_RE.finditer(stripped):
        name = match.group(1) or match.group(2)
        ctors.append(AggregatorConstruction(name, path,
                                            line_of(stripped, match.start())))
    return ctors


# --- Entry point -------------------------------------------------------------

def extract(path, text):
    """Builds the FileModel for one file. `path` is repo-relative posix."""
    stripped = strip_comments_and_strings(text)
    file_name = Path(path).name
    events, entry_held = collect_lock_events(stripped, file_name)
    file_model = FileModel(
        path=path,
        edges=replay_scopes(stripped, events, entry_held, path),
        morsel_flags=collect_morsel_flags(stripped, path),
        aggregator_constructions=collect_aggregator_constructions(
            stripped, path),
    )
    # Tier-6 facts are extracted by shared lexical code in both frontends
    # (like rank extraction): see dataflow.py.
    return dataflow.extract_into(file_model, text)
