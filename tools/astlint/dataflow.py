"""Tier-6 dataflow facts for astlint: arena escapes, scheduled-task
captures, and packed-shift widths.

Like rank extraction (model.py), Tier-6 fact extraction is deliberately
*lexical in both frontends*: the facts live in declarative source text
(declarations, capture lists, shift expressions), so both frontends call
the same code here and AST-vs-lex divergence is impossible for Tier 6 by
construction. The parity ctest (astlint.py --parity-test) guards the
Tier 4-5 facts where the frontends genuinely differ.

The engine is intraprocedural with call summaries, run in two phases:

  extract_into(model, text)   per file: discover function definitions
                              (name, qualifier, params, body span) from
                              the stripped text and stash the stripped
                              text for the link phase. Called by BOTH
                              frontends (lex_frontend.extract,
                              ast_frontend.extract_text/extract_repo).

  link(models)                whole-repo: per-function micro-facts (arena
                              declarations, allocation sites, aliases,
                              returns, member stores, Submit/Schedule
                              sites with parsed capture lists, Wait()
                              joins, Reset() calls), then call summaries
                              to a fixpoint, then findings onto each
                              FileModel:
      * returns-allocation summaries: a helper that returns a pointer
        allocated from an Arena&/Arena* parameter taints its call sites'
        results with the argument arena.
      * requires-join summaries: a function that Submit()s to a TaskGroup&
        parameter without joining it transfers the join obligation to its
        call sites (the recursive task-quicksort pattern).

Rule semantics (what gets flagged):

  arena-escape      a pointer allocated from a *function-local* arena
                    (Arena, WorkerArenas slot, or an allocator bound to
                    one) escapes the arena's lifetime: returned, stored
                    into a member / through a pointer-or-reference
                    parameter, captured into an unjoined scheduled task,
                    or used after the arena's Reset()/ResetAll().
                    Member-owned arenas are the owner's contract and are
                    not tracked (that is what WorkerArenas::Lease asserts
                    at runtime).

  morsel-capture    a lambda handed to Submit()/Schedule() captures state
                    by reference ([&], &local) but no dominating
                    receiver.Wait() in the same function bounds the task's
                    lifetime. Reference *parameters* are caller-owned: a
                    submit to a TaskGroup& parameter becomes a requires-
                    join summary checked at every call site instead of a
                    local finding. Executor::ParallelFor needs no special
                    case: it joins internally, so it carries no summary.

  packed-shift      every spaced shift in src/data/key_codec.*,
                    src/util/encoded_key.h, and src/data/lineitem.* is
                    checked symbolically: amount interval from the
                    width-fact table (grounded on kEncodedKeyBits parsed
                    from util/encoded_key.h: packed plans stay < 64 bits
                    by PackedKeyCodec::TryBuild, dense composites <= 128
                    by DictKeyCodec::Build) with ternary-guard refinement
                    (`x == 64 ? a : (1ULL << x)` excludes 64); operand
                    width from casts, u128 declarations, and literal
                    suffixes (`1 << k` is 32-bit). In lineitem files the
                    effective width is capped at 54: fixed-point cent
                    sums must stay below 2^53 for exact double
                    conversion, so 53 is the last safe shift. A shift
                    whose amount can reach the operand width — or whose
                    amount has no width fact at all — is flagged.
"""

import re
from dataclasses import dataclass, field

from model import ArenaEscape, ShiftSite, TaskCapture

# --- Text utilities (duplicated from lex_frontend so ast_frontend can use
# this module without importing the lexical frontend) ------------------------


def strip_comments_and_strings(text):
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_brace_span(text, open_brace):
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_paren_span(text, open_paren):
    """Offset one past the ')' matching text[open_paren]."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def split_top_level(text, sep=","):
    """Splits on top-level `sep`, respecting (), [], {}, and <> pairs."""
    parts, start, depth, angle = [], 0, 0, 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == sep and depth == 0 and angle == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return [p.strip() for p in parts if p.strip()]


def base_ident(expr):
    match = re.search(r"[A-Za-z_]\w*", expr or "")
    return match.group(0) if match else None


# --- Function discovery ------------------------------------------------------

CONTROL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "else", "do",
    "sizeof", "alignof", "alignas", "decltype", "static_assert", "new",
    "delete", "case", "default", "requires", "noexcept", "throw", "assert",
    "defined", "typedef", "using", "constexpr", "consteval", "constinit",
    "co_await", "co_return", "co_yield",
))
CANDIDATE_RE = re.compile(r"([A-Za-z_][\w:]*)\s*\(")
TRAILER_WORDS = ("const", "noexcept", "override", "final", "mutable",
                 "volatile")


@dataclass
class FuncModel:
    """One function definition's shape, enough for the link phase."""
    name: str            # unqualified (EncodeRow)
    qualifier: str       # enclosing class or A:: prefix ("" for free funcs)
    file: str
    line: int            # of the function name
    body_line: int       # of the body's '{'
    params: tuple        # ((name, type_text), ...)
    body_start: int      # offsets into the stripped file text
    body_end: int
    body: str            # stripped body text


def body_line_of(func, body_offset):
    return func.body_line + func.body[:body_offset].count("\n")


def _class_spans(stripped):
    """[(name, start, end)] for every class/struct body."""
    spans = []
    for match in re.finditer(
            r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
            r"([A-Za-z_]\w*)[^;{}()]*\{", stripped):
        start = match.end() - 1
        spans.append((match.group(1), start, match_brace_span(stripped, start)))
    return spans


def _param_entries(params_text):
    entries = []
    for part in split_top_level(params_text):
        if part in ("void", "...") or part.startswith("..."):
            continue
        head = part.split("=", 1)[0].rstrip()
        match = re.search(r"([A-Za-z_]\w*)$", head)
        if not match:
            continue
        entries.append((match.group(1), head[: match.start()].strip()))
    return entries


def _skip_trailer(stripped, pos):
    """Advances past `const noexcept -> T REQUIRES(x) : init_(a)` between a
    function's ')' and its body '{'. Returns the offset of the body '{', or
    None when this is not a definition."""
    n = len(stripped)
    while pos < n:
        while pos < n and stripped[pos].isspace():
            pos += 1
        if pos >= n:
            return None
        c = stripped[pos]
        if c == "{":
            return pos
        if c in ";,)=.+|^!<?[":
            return None
        if c == ":" and pos + 1 < n and stripped[pos + 1] == ":":
            return None
        if c == ":":
            # Constructor init list. entity{...} braces attach directly to a
            # word character; the body '{' follows a space or ')'.
            pos += 1
            while pos < n:
                c = stripped[pos]
                if c == "(":
                    pos = match_paren_span(stripped, pos)
                elif c == "{":
                    if stripped[pos - 1].isalnum() or stripped[pos - 1] == "_":
                        pos = match_brace_span(stripped, pos)
                    else:
                        return pos
                elif c == ";":
                    return None
                else:
                    pos += 1
            return None
        if c == "-" and pos + 1 < n and stripped[pos + 1] == ">":
            pos += 2
            while pos < n and stripped[pos] not in "{;":
                pos += 1
            continue
        word = re.match(r"[A-Za-z_]\w*", stripped[pos:])
        if word:
            token = word.group(0)
            pos += len(token)
            while pos < n and stripped[pos].isspace():
                pos += 1
            # Annotation macros (REQUIRES(mu), thread-safety attributes)
            # carry parenthesized arguments.
            if pos < n and stripped[pos] == "(" and token not in TRAILER_WORDS:
                if not token.isupper():
                    return None  # `Foo(a) Bar(b)` is not a definition header
                pos = match_paren_span(stripped, pos)
            continue
        if c in "&*":
            pos += 1
            continue
        return None
    return None


def discover_functions(path, stripped):
    """Finds every function definition in one stripped file."""
    classes = _class_spans(stripped)
    functions = []
    seen_bodies = set()
    for match in CANDIDATE_RE.finditer(stripped):
        full_name = match.group(1)
        last = full_name.rsplit("::", 1)[-1]
        if last in CONTROL_KEYWORDS or last.isupper():
            continue
        open_paren = stripped.index("(", match.end() - 1)
        paren_end = match_paren_span(stripped, open_paren)
        body_open = _skip_trailer(stripped, paren_end)
        if body_open is None:
            continue
        body_end = match_brace_span(stripped, body_open)
        if (body_open, body_end) in seen_bodies:
            continue
        seen_bodies.add((body_open, body_end))
        qualifier = full_name.rsplit("::", 1)[0] if "::" in full_name else ""
        if not qualifier:
            enclosing = [c for c in classes if c[1] < match.start() < c[2]]
            if enclosing:
                qualifier = min(enclosing, key=lambda c: c[2] - c[1])[0]
        functions.append(FuncModel(
            name=last, qualifier=qualifier, file=path,
            line=line_of(stripped, match.start()),
            body_line=line_of(stripped, body_open),
            params=tuple(_param_entries(
                stripped[open_paren + 1:paren_end - 1])),
            body_start=body_open, body_end=body_end,
            body=stripped[body_open:body_end]))
    return functions


# --- Expression helpers ------------------------------------------------------


def receiver_before(text, op_start):
    """The member-access chain ending at the `.`/`->` starting at op_start:
    `state_->group`, `pool()`, `arenas_->ForWorker(w)`. Returns (chain
    normalized whitespace-free, base identifier) or (None, None)."""
    i = op_start
    while i > 0 and text[i - 1].isspace():
        i -= 1
    end = i
    while i > 0:
        c = text[i - 1]
        if c in ")]":
            opener = "(" if c == ")" else "["
            depth, k = 0, i - 1
            while k >= 0:
                if text[k] == c:
                    depth += 1
                elif text[k] == opener:
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                break
            i = k
        elif c.isalnum() or c == "_":
            while i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                i -= 1
        else:
            j = i
            while j > 0 and text[j - 1].isspace():
                j -= 1
            if j >= 1 and text[j - 1] == "." and not (
                    j >= 2 and text[j - 2].isdigit()):
                i = j - 1
            elif j >= 2 and text[j - 2:j] == "->":
                i = j - 2
            else:
                break
    chain = re.sub(r"\s+", "", text[i:end])
    if not chain or not re.match(r"[A-Za-z_(]", chain):
        return None, None
    return chain, base_ident(chain)


# --- Per-function micro-facts ------------------------------------------------

ARENA_DECL_RE = re.compile(r"\b(Arena|WorkerArenas)\s+([a-z]\w*)\s*[;({]")
ARENA_ALIAS_RE = re.compile(r"\bArena\s*[&*]\s*(\w+)\s*=\s*&?\s*([^;]+);")
ALLOC_DECL_RE = re.compile(
    r"\b(?:ArenaAllocator|PoolAllocator\s*<[^;{}]*?>)\s+(\w+)\s*"
    r"[({]\s*&\s*([^;)}]+?)\s*[)}]")
ATTACH_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*\.\s*Attach\s*\(\s*&\s*([^;)]+)\)")
ALLOC_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*"
    r"((?:\.|->)\s*ForWorker\s*\([^()]*\)\s*)?"
    r"(?:\.|->)\s*(New|Allocate|AllocateBytes)\b")
ASSIGN_ALIAS_RE = re.compile(r"\b([A-Za-z_]\w*)\s*=\s*([A-Za-z_]\w*)\s*;")
RETURN_RE = re.compile(r"\breturn\b([^;]*);")
MEMBER_STORE_RE = re.compile(
    r"(?:this\s*->\s*)?\b([A-Za-z_]\w*_)\s*(?:\[[^\]]*\])?\s*=(?!=)([^;]*);")
DEREF_STORE_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:->|\.)\s*[A-Za-z_]\w*\s*=(?!=)([^;]*);")
RESET_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(Reset|ResetAll)\s*\(")
SUBMIT_RE = re.compile(r"(\.|->)\s*(Submit|Schedule)\s*\(")
WAIT_RE = re.compile(r"(\.|->)\s*Wait\s*\(\s*\)")
NAMED_LAMBDA_RE = re.compile(r"\bauto\s+(\w+)\s*=\s*\[")
CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")

ARENA_PARAM_TYPES = ("Arena", "ArenaAllocator", "WorkerArenas")
GROUP_PARAM_TYPES = ("TaskGroup", "Executor", "TaskScheduler", "ThreadPool")


def _typed_params(func, type_names):
    out = {}
    for idx, (name, type_text) in enumerate(func.params):
        if any(re.search(rf"\b{t}\b", type_text) for t in type_names):
            out[name] = idx
    return out


def _parse_lambda(body, open_bracket):
    """Parses a lambda literal at body[open_bracket] == '['. Returns
    (captures list, offset one past the lambda body) or (None, open)."""
    depth, close = 0, None
    for i in range(open_bracket, len(body)):
        if body[i] == "[":
            depth += 1
        elif body[i] == "]":
            depth -= 1
            if depth == 0:
                close = i
                break
    if close is None:
        return None, open_bracket
    captures = split_top_level(body[open_bracket + 1:close])
    i = close + 1
    while i < len(body) and body[i].isspace():
        i += 1
    if i < len(body) and body[i] == "(":
        i = match_paren_span(body, i)
    while i < len(body) and body[i] not in "{;":
        i += 1
    if i >= len(body) or body[i] == ";":
        return captures, close + 1
    return captures, match_brace_span(body, i)


@dataclass
class SubmitSite:
    offset: int          # into the function body
    line: int
    receiver: str        # normalized chain ("group", "pool()")
    base: str            # first identifier of the chain
    captures: tuple      # capture entries, or None (opaque argument)
    lambda_span: tuple   # (start, end) body offsets, or None


def _submit_sites(func):
    body = func.body
    named = {}
    for match in NAMED_LAMBDA_RE.finditer(body):
        captures, end = _parse_lambda(body, match.end() - 1)
        if captures is not None:
            named[match.group(1)] = (captures, (match.end() - 1, end))
    sites = []
    for match in SUBMIT_RE.finditer(body):
        chain, base = receiver_before(body, match.start())
        if chain is None:
            continue
        arg_open = body.index("(", match.end() - 1)
        i = arg_open + 1
        while i < len(body) and body[i].isspace():
            i += 1
        captures, span = None, None
        if i < len(body) and body[i] == "[":
            captures, end = _parse_lambda(body, i)
            span = (i, end)
        else:
            name = re.match(r"[A-Za-z_]\w*", body[i:])
            if name and name.group(0) in named:
                captures, span = named[name.group(0)]
        sites.append(SubmitSite(
            offset=match.start(), line=body_line_of(func, match.start()),
            receiver=chain, base=base, captures=captures, lambda_span=span))
    return sites


def _join_offsets(func):
    """{normalized receiver chain: [offsets]} of every receiver.Wait()."""
    joins = {}
    for match in WAIT_RE.finditer(func.body):
        chain, _ = receiver_before(func.body, match.start())
        if chain is not None:
            joins.setdefault(chain, []).append(match.start())
    return joins


def _joined_after(joins, receiver, offset):
    return any(o > offset for o in joins.get(receiver, ()))


@dataclass
class FuncFacts:
    """Everything link() needs about one function."""
    func: FuncModel
    arena_locals: dict       # name -> "Arena" | "WorkerArenas"
    arena_params: dict       # name -> param index
    group_params: dict       # name -> param index
    bound: dict              # allocator/alias name -> owning arena name
    submits: list            # [SubmitSite]
    joins: dict              # receiver chain -> [offsets]
    taints: dict             # var -> ("local", arena) | ("param", index)
    calls: list = field(default_factory=list)


def _stmt_start(body, offset):
    return max(body.rfind(";", 0, offset), body.rfind("{", 0, offset),
               body.rfind("}", 0, offset)) + 1


def _initial_facts(func):
    body = func.body
    arena_locals = {m.group(2): m.group(1)
                    for m in ARENA_DECL_RE.finditer(body)}
    arena_params = _typed_params(func, ARENA_PARAM_TYPES)
    group_params = _typed_params(func, GROUP_PARAM_TYPES)

    bound = {}
    for pattern in (ARENA_ALIAS_RE, ALLOC_DECL_RE, ATTACH_RE):
        for match in pattern.finditer(body):
            base = base_ident(match.group(2))
            if base in arena_locals or base in arena_params or base in bound:
                bound[match.group(1)] = bound.get(base, base)

    def resolve_origin(handle):
        base = bound.get(handle, handle)
        if base in arena_locals:
            return ("local", base)
        if base in arena_params:
            return ("param", arena_params[base])
        return None

    taints = {}
    for match in ALLOC_CALL_RE.finditer(body):
        origin = resolve_origin(match.group(1))
        if origin is None:
            continue
        prefix = body[_stmt_start(body, match.start()):match.start()]
        assign = re.search(
            r"([A-Za-z_]\w*)\s*=\s*(?:static_cast\s*<[^>]*>\s*\(\s*)?$",
            prefix)
        if assign:
            taints[assign.group(1)] = origin
        elif re.search(r"\breturn\b[^;=]*$", prefix):
            taints["$return%d" % match.start()] = origin

    for _ in range(2):  # alias chains: q = p;
        for match in ASSIGN_ALIAS_RE.finditer(body):
            lhs, rhs = match.group(1), match.group(2)
            if rhs in taints and lhs not in taints:
                taints[lhs] = taints[rhs]

    return FuncFacts(
        func=func, arena_locals=arena_locals, arena_params=arena_params,
        group_params=group_params, bound=bound, submits=_submit_sites(func),
        joins=_join_offsets(func), taints=taints)


def _collect_calls(func, interesting):
    calls = []
    for match in CALL_RE.finditer(func.body):
        name = match.group(1)
        if name not in interesting:
            continue
        open_paren = func.body.index("(", match.end() - 1)
        end = match_paren_span(func.body, open_paren)
        args = split_top_level(func.body[open_paren + 1:end - 1])
        calls.append((name, args, match.start(),
                      body_line_of(func, match.start())))
    return calls


# --- Packed-shift analysis ---------------------------------------------------

SHIFT_SCOPE = ("src/data/key_codec", "src/util/encoded_key",
               "src/data/lineitem")
# Fixed-point exactness: cent sums must stay below 2^53 (data/lineitem.h),
# so 53 is the widest safe shift and the effective operand width is 54.
FIXED_POINT_WIDTH = 54
KBITS_RE = re.compile(r"\bkEncodedKeyBits\s*=\s*(\d+)")
UNKNOWN = 10 ** 9
SHIFT_OP_RE = re.compile(r"(?<=[\s])(<<|>>)(?=[\s])")
LITERAL_RE = re.compile(r"^(0[xX][0-9a-fA-F]+|\d+)([uUlLzZ]*)$")
AMOUNT_RE = re.compile(r"\s*(\([^()]*\)|[A-Za-z_][\w.>\[\]-]*|\d\w*)")
TERNARY_GUARD_RE = re.compile(r"([\w.]+(?:->[\w.]+)*)\s*==\s*(\d+)\s*\?")


def width_facts(kbits):
    """Interval facts for shift amounts, grounded on kEncodedKeyBits.
    PackedKeyCodec::TryBuild rejects total_bits >= kEncodedKeyBits and every
    field is >= 1 bit, so packed per-field widths lie in [1, kbits-1] and
    the decode cursor in [0, kbits-2]. DictKeyCodec::Build caps composites
    at 2*kEncodedKeyBits and a single u64 column can need a full kbits."""
    packed = kbits - 1
    dense = 2 * kbits
    return {
        "PackedKeyCodec": {
            "bits": (1, packed),        # KeyFieldPlan::bits under TryBuild
            "shift": (0, packed - 1),   # width_bits_ minus a leading field
            "rest_bits": (0, packed - 1),
            "width_bits_": (1, packed),
            "total_bits": (1, packed),
        },
        "DictKeyCodec": {
            "bits": (1, kbits),         # one u64 column may need 64 bits
            "shift": (0, dense - 1),
            "composite_bits_": (1, dense),
            "total_bits": (1, dense),
        },
        "": {
            "kEncodedKeyBits": (kbits, kbits),
        },
    }


def _operand_before(text, op_start):
    """Text of the expression immediately left of the shift operator."""
    i = op_start
    while i > 0 and text[i - 1].isspace():
        i -= 1
    end = i
    while i > 0:
        c = text[i - 1]
        if c in ")>":
            opener = "(" if c == ")" else "<"
            depth, k = 0, i - 1
            while k >= 0:
                if text[k] == c:
                    depth += 1
                elif text[k] == opener:
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                break
            i = k
        elif c.isalnum() or c in "_~.]":
            i -= 1
        else:
            break
    return text[i:end].strip()


def _operand_bits(expr, u128_names, kbits):
    flat = re.sub(r"\s+", "", expr)
    if "__int128" in flat:
        return 128
    if "EncodedKey" in flat:
        return kbits
    literal = LITERAL_RE.match(flat.lstrip("~"))
    if literal:
        return 64 if "l" in literal.group(2).lower() else 32
    first = base_ident(flat)
    if first in u128_names:
        return 128
    return 64


def _amount_interval(amount, scope, facts, stmt, shift_pos_in_stmt):
    flat = re.sub(r"\s+", "", amount)
    literal = LITERAL_RE.match(flat)
    if literal:
        value = int(literal.group(1), 0)
        return value, value
    last = flat.rsplit(".", 1)[-1].rsplit("->", 1)[-1]
    interval = facts.get(scope, {}).get(last) or facts[""].get(last)
    if interval is None:
        return 0, UNKNOWN
    lo, hi = interval
    for guard in TERNARY_GUARD_RE.finditer(stmt):
        guard_last = guard.group(1).rsplit(".", 1)[-1].rsplit("->", 1)[-1]
        if guard_last != last or guard.end() > shift_pos_in_stmt:
            continue
        excluded = int(guard.group(2))
        if excluded == hi:
            hi -= 1
        elif excluded == lo:
            lo += 1
    return lo, hi


def analyze_shifts(path, stripped, functions, kbits):
    if not any(tag in path for tag in SHIFT_SCOPE):
        return []
    u128_names = set(re.findall(r"__int128\s+(\w+)", stripped))
    facts = width_facts(kbits)
    sites = []
    for match in SHIFT_OP_RE.finditer(stripped):
        after = stripped[match.end():].lstrip()
        if after[:1] in ("\"", "'"):
            continue  # stream insertion of a (blanked) literal
        operand = _operand_before(stripped, match.start())
        amount_match = AMOUNT_RE.match(stripped, match.end())
        amount = amount_match.group(1).strip() if amount_match else "?"
        if amount.startswith("(") and amount.endswith(")"):
            amount = amount[1:-1].strip()
        scope = ""
        for func in functions:
            if func.body_start <= match.start() < func.body_end:
                scope = func.qualifier
                break
        stmt_start = _stmt_start(stripped, match.start())
        stmt_end = stripped.find(";", match.end())
        stmt_end = len(stripped) if stmt_end == -1 else stmt_end
        bits = _operand_bits(operand, u128_names, kbits)
        if "lineitem" in path:
            bits = min(bits, FIXED_POINT_WIDTH)
        lo, hi = _amount_interval(
            amount, scope, facts, stripped[stmt_start:stmt_end],
            match.start() - stmt_start)
        sites.append(ShiftSite(
            op=match.group(1), operand=operand or "?", operand_bits=bits,
            amount=amount, amount_min=lo, amount_max=hi,
            ok=(hi < bits and lo >= 0),
            file=path, line=line_of(stripped, match.start())))
    return sites


# --- Entry points ------------------------------------------------------------


def extract_into(file_model, text):
    """Per-file phase, called by both frontends: attach function models and
    the stripped text (consumed and dropped by link())."""
    stripped = strip_comments_and_strings(text)
    file_model.functions = discover_functions(file_model.path, stripped)
    kb = KBITS_RE.search(stripped)
    if kb:
        file_model.encoded_key_bits = int(kb.group(1))
    file_model.stripped_text = stripped
    return file_model


def link(models):
    """Whole-repo phase: shift checks, call summaries to a fixpoint, and
    arena-escape / task-capture findings onto each FileModel."""
    kbits = next((m.encoded_key_bits for m in models
                  if getattr(m, "encoded_key_bits", None)), 64)

    facts_list = []
    for model in models:
        stripped = getattr(model, "stripped_text", "")
        functions = getattr(model, "functions", [])
        model.shift_sites = analyze_shifts(
            model.path, stripped, functions, kbits)
        for func in functions:
            facts_list.append(_initial_facts(func))

    # Summary A: functions returning an allocation from an arena parameter.
    returns_alloc = {}   # name -> {param index}
    # Summary B: functions submitting to a TaskGroup& parameter unjoined.
    requires_join = {}   # name -> {param index}
    for facts in facts_list:
        for var, origin in list(facts.taints.items()):
            if origin[0] != "param":
                continue
            if var.startswith("$return"):
                returns_alloc.setdefault(facts.func.name, set()).add(origin[1])
                continue
            for ret in RETURN_RE.finditer(facts.func.body):
                if re.search(rf"\b{re.escape(var)}\b(?!\s*(?:->|\.|\[))",
                             ret.group(1)):
                    returns_alloc.setdefault(
                        facts.func.name, set()).add(origin[1])
        for submit in facts.submits:
            if submit.base in facts.group_params and not _joined_after(
                    facts.joins, submit.receiver, submit.offset):
                requires_join.setdefault(facts.func.name, set()).add(
                    facts.group_params[submit.base])

    # Fixpoint: propagate both summaries through wrappers (a caller that
    # forwards its own parameter inherits the obligation; a caller that
    # assigns the callee's result inherits the taint).
    for _ in range(8):
        changed = False
        interesting = set(returns_alloc) | set(requires_join)
        for facts in facts_list:
            facts.calls = _collect_calls(facts.func, interesting)
            body = facts.func.body
            for callee, args, offset, _line in facts.calls:
                for idx in returns_alloc.get(callee, ()):
                    if idx >= len(args):
                        continue
                    base = base_ident(args[idx])
                    base = facts.bound.get(base, base)
                    origin = None
                    if base in facts.arena_locals:
                        origin = ("local", base)
                    elif base in facts.arena_params:
                        origin = ("param", facts.arena_params[base])
                    if origin is None:
                        continue
                    prefix = body[_stmt_start(body, offset):offset]
                    assign = re.search(r"([A-Za-z_]\w*)\s*=\s*$", prefix)
                    if assign:
                        if facts.taints.get(assign.group(1)) != origin:
                            facts.taints[assign.group(1)] = origin
                            changed = True
                    elif re.search(r"\breturn\b[^;=]*$", prefix):
                        key = "$return%d" % offset
                        if facts.taints.get(key) != origin:
                            facts.taints[key] = origin
                            changed = True
                for idx in requires_join.get(callee, ()):
                    if idx >= len(args):
                        continue
                    base = base_ident(args[idx])
                    if base in facts.group_params:
                        want = requires_join.setdefault(facts.func.name, set())
                        if facts.group_params[base] not in want:
                            want.add(facts.group_params[base])
                            changed = True
        # New $return taints feed summary A for the next round.
        for facts in facts_list:
            for var, origin in facts.taints.items():
                if var.startswith("$return") and origin[0] == "param":
                    have = returns_alloc.setdefault(facts.func.name, set())
                    if origin[1] not in have:
                        have.add(origin[1])
                        changed = True
        if not changed:
            break

    for facts in facts_list:  # re-run aliasing with interprocedural taints
        for _ in range(2):
            for match in ASSIGN_ALIAS_RE.finditer(facts.func.body):
                lhs, rhs = match.group(1), match.group(2)
                if rhs in facts.taints and lhs not in facts.taints:
                    facts.taints[lhs] = facts.taints[rhs]

    findings = {model.path: ([], []) for model in models}
    for facts in facts_list:
        escapes, captures = findings[facts.func.file]
        _arena_findings(facts, escapes)
        _capture_findings(facts, captures, requires_join)
    for model in models:
        escapes, captures = findings[model.path]
        model.arena_escapes = sorted(escapes, key=lambda e: e.line)
        model.task_captures = sorted(captures, key=lambda c: c.line)
        if hasattr(model, "stripped_text"):
            del model.stripped_text
    return models


# --- Findings ----------------------------------------------------------------


def _arena_findings(facts, out):
    func = facts.func
    body = func.body
    local_taints = {var: origin[1] for var, origin in facts.taints.items()
                    if origin[0] == "local" and not var.startswith("$return")}
    return_taints = {var: origin[1] for var, origin in facts.taints.items()
                     if origin[0] == "local" and var.startswith("$return")}

    for var, arena in return_taints.items():
        offset = int(var[len("$return"):])
        out.append(ArenaEscape(
            kind="return", pointer="<temporary>", arena=arena,
            function=func.name, file=func.file,
            line=body_line_of(func, offset),
            detail=f"returns a pointer allocated from local arena "
                   f"'{arena}'"))

    # `return row` escapes the pointer; `return row->value` copies a value
    # out through it — only bare (underef'd) mentions count for return and
    # store sinks.
    def bare(var):
        return rf"\b{re.escape(var)}\b(?!\s*(?:->|\.|\[))"

    for match in RETURN_RE.finditer(body):
        for var, arena in local_taints.items():
            if re.search(bare(var), match.group(1)):
                out.append(ArenaEscape(
                    kind="return", pointer=var, arena=arena,
                    function=func.name, file=func.file,
                    line=body_line_of(func, match.start()),
                    detail=f"returns '{var}', allocated from local arena "
                           f"'{arena}'"))

    param_ptr_refs = {name for name, type_text in func.params
                      if "*" in type_text or "&" in type_text}
    for pattern, describe in (
            (MEMBER_STORE_RE, lambda m: f"stores into member '{m.group(1)}'"),
            (DEREF_STORE_RE,
             lambda m: f"stores through parameter '{m.group(1)}'")):
        for match in pattern.finditer(body):
            if pattern is DEREF_STORE_RE and \
                    match.group(1) not in param_ptr_refs:
                continue
            for var, arena in local_taints.items():
                if re.search(bare(var), match.group(2)):
                    out.append(ArenaEscape(
                        kind="store", pointer=var, arena=arena,
                        function=func.name, file=func.file,
                        line=body_line_of(func, match.start()),
                        detail=f"{describe(match)} '{var}', allocated from "
                               f"local arena '{arena}'"))

    for submit in facts.submits:
        if submit.lambda_span is None:
            continue
        if _joined_after(facts.joins, submit.receiver, submit.offset):
            continue  # the Wait() precedes the local arena's destruction
        lam = body[submit.lambda_span[0]:submit.lambda_span[1]]
        for var, arena in local_taints.items():
            if re.search(rf"\b{re.escape(var)}\b", lam):
                out.append(ArenaEscape(
                    kind="task-capture", pointer=var, arena=arena,
                    function=func.name, file=func.file, line=submit.line,
                    detail=f"captures '{var}' (allocated from local arena "
                           f"'{arena}') into an unjoined scheduled task"))

    param_names = {idx: name for name, idx in facts.arena_params.items()}
    for match in RESET_RE.finditer(body):
        target = facts.bound.get(match.group(1), match.group(1))
        if target not in facts.arena_locals and \
                target not in facts.arena_params:
            continue
        for var, origin in facts.taints.items():
            if var.startswith("$return"):
                continue
            owner = origin[1] if origin[0] == "local" \
                else param_names.get(origin[1])
            if owner != target:
                continue
            for use in re.finditer(rf"\b{re.escape(var)}\b",
                                   body[match.end():]):
                tail = body[match.end() + use.end():]
                if re.match(r"\s*=[^=]", tail):
                    break  # reassigned: the stale pointer dies here
                out.append(ArenaEscape(
                    kind="use-after-reset", pointer=var, arena=target,
                    function=func.name, file=func.file,
                    line=body_line_of(func, match.end() + use.start()),
                    detail=f"uses '{var}' after '{target}' was "
                           f"{match.group(2)}()"))
                break


def _capture_findings(facts, out, requires_join):
    func = facts.func
    param_names = {name for name, _ in func.params}
    for submit in facts.submits:
        if submit.captures is None:
            continue
        if _joined_after(facts.joins, submit.receiver, submit.offset):
            continue
        receiver_is_param = submit.base in facts.group_params
        for entry in submit.captures:
            if entry == "&":
                out.append(TaskCapture(
                    variable="[&]", receiver=submit.receiver,
                    function=func.name, file=func.file, line=submit.line,
                    detail="default by-reference capture in a scheduled "
                           "task with no dominating Wait() in this scope"))
                continue
            if not entry.startswith("&"):
                continue  # by-value or this: lifetime-safe here
            name = base_ident(entry.split("=", 1)[0])
            if name is None:
                continue
            is_param = name in param_names
            if is_param and receiver_is_param:
                # Caller-owned on both sides: the requires-join summary
                # checks the call sites instead.
                continue
            out.append(TaskCapture(
                variable=f"&{name}", receiver=submit.receiver,
                function=func.name, file=func.file, line=submit.line,
                detail=f"captures {'parameter' if is_param else 'local'} "
                       f"'{name}' by reference into a scheduled task with "
                       "no dominating Wait() in this scope"))

    # Call sites of requires-join functions: the argument group must be
    # joined later in this scope, or be our own parameter (in which case
    # the obligation propagated during the fixpoint), or be the recursive
    # self-call whose root call site owns the join.
    for callee, args, offset, line in facts.calls:
        if callee == facts.func.name:
            continue
        for idx in requires_join.get(callee, ()):
            if idx >= len(args):
                continue
            base = base_ident(args[idx])
            if base is None or base in facts.group_params:
                continue
            joined = any(
                _joined_after(facts.joins, chain, offset)
                for chain in facts.joins if base_ident(chain) == base)
            if not joined:
                out.append(TaskCapture(
                    variable=base, receiver=f"{callee}()",
                    function=func.name, file=func.file, line=line,
                    detail=f"'{callee}' submits tasks to '{base}' "
                           f"(requires-join summary) but no {base}.Wait() "
                           "follows in this scope"))
