#!/usr/bin/env bash
# Final verification run: full test suite + every benchmark binary, with
# outputs captured at the repo root (test_output.txt, bench_output.txt).
set -uo pipefail
cd "$(dirname "$0")/.."

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "===== $b ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt
