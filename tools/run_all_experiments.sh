#!/usr/bin/env bash
# Regenerates every paper table/figure into results/.
#
# Usage: tools/run_all_experiments.sh [records] [build_dir]
#   records   dataset size for the main sweeps (default 4M; paper scale 100M)
#   build_dir CMake build directory (default ./build)
set -euo pipefail

RECORDS="${1:-4M}"
BUILD="${2:-build}"
OUT=results
mkdir -p "$OUT"

run() {
  local name="$1"
  shift
  echo ">>> $name $*"
  "$BUILD/bench/$name" "$@" > "$OUT/$name.csv"
}

run bench_sort_micro                              # Figure 2 (10M default)
run bench_ds_micro                                # Figure 3 (10M default)
run bench_vector_q1    --records="$RECORDS"       # Figure 4
run bench_vector_q3    --records="$RECORDS"       # Figure 5
run bench_cache_tlb                               # Figure 6 (perf or sim)
run bench_memory                                  # Tables 6-7
run bench_distribution --records="$RECORDS"       # Figure 7
run bench_range_q7     --records="$RECORDS"       # Figure 8
run bench_scalar_q6    --records="$RECORDS"       # Figure 9
run bench_parallel_sort                           # Figure 10
run bench_mt_scaling   --records="$RECORDS"       # Figure 11
run bench_vector_q2    --records="$RECORDS"       # Q2 companion
run bench_ablation     --records="$RECORDS"       # DESIGN.md ablations

echo "All experiment outputs written to $OUT/."
