#!/usr/bin/env python3
"""Renders memagg bench CSVs as ASCII charts for quick shape inspection.

Usage:
  tools/plot_results.py results/bench_vector_q1.csv --dataset=Rseq
  tools/plot_results.py results/bench_sort_micro.csv

Detects the bench type from the CSV header and draws either grouped bars
(one metric per row) or per-algorithm series over the x column. Only needs
the standard library, so it runs anywhere the benches do.
"""

import argparse
import csv
import sys
from collections import defaultdict

BAR_WIDTH = 60


def read_rows(path):
    rows = []
    with open(path) as handle:
        header = None
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if header is None:
                header = line.split(",")
                continue
            rows.append(dict(zip(header, line.split(","))))
    return header or [], rows


def bar(value, peak):
    if peak <= 0:
        return ""
    return "#" * max(1, int(BAR_WIDTH * value / peak))


def pick_metric(header):
    for name in ("total_cycles", "time_ms", "build_cycles", "peak_rss_mb",
                 "cache_misses", "total_ms", "range_cycles"):
        if name in header:
            return name
    return header[-1]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--dataset", help="filter rows by dataset column")
    parser.add_argument("--query", help="filter rows by query column")
    parser.add_argument("--metric", help="override the plotted column")
    args = parser.parse_args()

    header, rows = read_rows(args.csv_path)
    if not rows:
        sys.exit("no data rows found")
    if args.dataset and "dataset" in header:
        rows = [r for r in rows if r["dataset"] == args.dataset]
    if args.query and "query" in header:
        rows = [r for r in rows if r["query"] == args.query]
    if not rows:
        sys.exit("all rows filtered out")

    metric = args.metric or pick_metric(header)
    values = [float(r[metric]) for r in rows]
    peak = max(values)

    # Group rows by every non-metric, non-algorithm dimension so each group
    # prints as one chart.
    group_cols = [c for c in header
                  if c not in (metric, "algorithm", "structure", "policy")
                  and not c.endswith("_ms") and not c.endswith("cycles")
                  and c != "median" and c != "groups" and c != "mode"
                  and c != "available" and c != "sort_mode"
                  and c != "ds_bytes_mb"]
    label_col = next((c for c in ("algorithm", "structure", "policy")
                      if c in header), header[0])

    charts = defaultdict(list)
    for row in rows:
        key = tuple(row.get(c, "") for c in group_cols)
        charts[key].append(row)

    for key, chart_rows in charts.items():
        title = ", ".join(f"{c}={v}" for c, v in zip(group_cols, key))
        print(f"\n== {title} [{metric}] ==")
        for row in chart_rows:
            value = float(row[metric])
            print(f"  {row[label_col]:<22} {value:>14.1f} {bar(value, peak)}")


if __name__ == "__main__":
    main()
