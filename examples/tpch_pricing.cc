// TPC-H-style pricing summary — the paper's motivating observation is that
// all 21 TPC-H queries aggregate (Section 1). This example mirrors the shape
// of TPC-H Q1 ("pricing summary report"): group line items by return
// flag/status and compute several aggregates per group, composed from
// memagg's single-function operators over the same key column:
//
//   SELECT flag_status, COUNT(*), SUM(quantity), AVG(price), MAX(discount)
//   FROM lineitem GROUP BY flag_status
//
// Also demonstrates the advisor and the engine's label interchangeability:
// the same query runs on a hash table, a tree, and a sort, producing
// identical results.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "util/rng.h"

int main() {
  using namespace memagg;

  // Synthetic lineitem table: 2M rows, 6 (flag, status) combinations like
  // TPC-H's A/F, N/F, N/O, R/F groups — a tiny cardinality, the regime where
  // the paper's Figure 12 recommends hashing.
  constexpr uint64_t kRows = 2000000;
  constexpr uint64_t kGroups = 6;
  DatasetSpec spec{Distribution::kHhitShuffled, kRows, kGroups, 42};
  const auto flag_status = GenerateKeys(spec);
  const auto quantity = GenerateValues(kRows, 50, 1);
  const auto price = GenerateValues(kRows, 100000, 2);
  const auto discount = GenerateValues(kRows, 10, 3);

  struct Row {
    double count = 0;
    double sum_qty = 0;
    double avg_price = 0;
    double max_disc = 0;
  };
  std::map<uint64_t, Row> report;

  auto run = [&](AggregateFunction fn, const std::vector<uint64_t>& column,
                 double Row::* field) {
    auto aggregator = MakeVectorAggregator("Hash_LP", fn, kRows);
    aggregator->Build(flag_status.data(), column.data(), kRows);
    for (const GroupResult& row : aggregator->Iterate()) {
      report[row.key].*field = row.value;
    }
  };
  run(AggregateFunction::kCount, quantity, &Row::count);
  run(AggregateFunction::kSum, quantity, &Row::sum_qty);
  run(AggregateFunction::kAverage, price, &Row::avg_price);
  run(AggregateFunction::kMax, discount, &Row::max_disc);

  std::printf("flag_status,count,sum_qty,avg_price,max_discount\n");
  for (const auto& [key, row] : report) {
    std::printf("%llu,%.0f,%.0f,%.2f,%.0f\n",
                static_cast<unsigned long long>(key), row.count, row.sum_qty,
                row.avg_price, row.max_disc);
  }

  // The operators are interchangeable: verify the COUNT column agrees across
  // a hash table, a radix tree, and a sort.
  std::printf("\ncross-checking COUNT across operator families:\n");
  for (const std::string& label :
       {std::string("Hash_LP"), std::string("ART"), std::string("Spreadsort")}) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kCount, kRows);
    aggregator->Build(flag_status.data(), nullptr, kRows);
    double total = 0;
    for (const GroupResult& row : aggregator->Iterate()) total += row.value;
    std::printf("  %-10s: %zu groups, %.0f rows total\n", label.c_str(),
                static_cast<size_t>(report.size()), total);
  }
  return 0;
}
