// Holistic aggregation over skewed sensor data — the workload where the
// paper's headline finding applies: sort-based operators beat hash tables on
// MEDIAN queries (Sections 5.2 and 6).
//
//   Q3  SELECT sensor_id, MEDIAN(reading) ... GROUP BY sensor_id
//   Q6  SELECT MEDIAN(sensor_id) ...   (scalar: the "middle" sensor)
//
// Runs Q3 with both the advisor's pick (Spreadsort) and a hash table, and
// reports both timings so the trade-off is visible.

#include <cstdio>
#include <vector>

#include "core/advisor.h"
#include "core/engine.h"
#include "core/query.h"
#include "data/dataset.h"
#include "util/cycle_timer.h"

int main() {
  using namespace memagg;

  // 2M readings from 5k sensors; Zipf-skewed (some sensors report far more
  // often), values = raw readings.
  constexpr uint64_t kReadings = 2000000;
  constexpr uint64_t kSensors = 5000;
  DatasetSpec spec{Distribution::kZipf, kReadings, kSensors, 7};
  const auto sensor_ids = GenerateKeys(spec);
  const auto readings = GenerateValues(kReadings, /*value_range=*/4096);

  // Ask the Figure 12 advisor what to use for a holistic vector query.
  const Query q3 = MakeQ3();
  const std::string recommended = RecommendAlgorithm(ProfileForQuery(q3));
  std::printf("advisor picks %s for Q3\n", recommended.c_str());

  auto run_q3 = [&](const std::string& label) {
    auto aggregator =
        MakeVectorAggregator(label, AggregateFunction::kMedian, kReadings);
    CycleTimer timer;
    timer.Start();
    aggregator->Build(sensor_ids.data(), readings.data(), kReadings);
    const auto result = aggregator->Iterate();
    timer.Stop();
    std::printf("Q3 via %-10s: %zu sensors, %.1f ms\n", label.c_str(),
                result.size(), timer.ElapsedMillis());
    return result;
  };

  const auto sorted_result = run_q3(recommended);
  const auto hashed_result = run_q3("Hash_LP");

  // Same answer either way (modulo row order).
  std::printf("medians agree: %s\n",
              sorted_result.size() == hashed_result.size() ? "yes (same group"
                                                             " count)"
                                                           : "NO");

  // Q6: scalar median of the sensor-id column via the advisor's WORO pick.
  const std::string scalar_label =
      RecommendAlgorithm(ProfileForQuery(MakeQ6()));
  auto scalar = MakeScalarMedianAggregator(scalar_label);
  scalar->Build(sensor_ids.data(), nullptr, kReadings);
  std::printf("Q6 via %s: median sensor id = %.1f\n", scalar_label.c_str(),
              scalar->Finalize());
  return 0;
}
