// Quickstart: group-by aggregation in a few lines.
//
//   SELECT product_id, COUNT(*) FROM sales GROUP BY product_id   (Q1)
//
// Demonstrates the two-phase operator API (Build, then Iterate) and the
// engine factory keyed by the paper's algorithm labels.

#include <cstdio>
#include <vector>

#include "core/aggregate.h"
#include "core/engine.h"

int main() {
  // A tiny sales table: one record per sale, keyed by product id.
  const std::vector<uint64_t> product_ids = {3, 1, 4, 1, 5, 9, 2, 6, 5,
                                             3, 5, 8, 9, 7, 9, 3, 2, 3};

  // Pick an algorithm by its paper label — here the linear-probing hash
  // table, the paper's Figure 12 recommendation for single-threaded
  // distributive aggregation.
  auto aggregator = memagg::MakeVectorAggregator(
      "Hash_LP", memagg::AggregateFunction::kCount, product_ids.size());

  // Build phase: consume the key column (COUNT(*) needs no value column).
  aggregator->Build(product_ids.data(), nullptr, product_ids.size());

  // Iterate phase: one row per group.
  std::printf("product_id,count\n");
  for (const memagg::GroupResult& row : aggregator->Iterate()) {
    std::printf("%llu,%.0f\n", static_cast<unsigned long long>(row.key),
                row.value);
  }
  return 0;
}
