// Walks the paper's Figure 12 decision flow chart for every Table 1 query
// under several workload assumptions, printing the decision path and the
// recommended algorithm, then executes each recommendation on a small
// dataset to show the advice is runnable as-is.

#include <cstdio>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/engine.h"
#include "core/query.h"
#include "data/dataset.h"

int main() {
  using namespace memagg;

  const std::vector<Query> queries = {MakeQ1(), MakeQ2(), MakeQ3(),
                                      MakeQ4(), MakeQ5(), MakeQ6(), MakeQ7()};

  std::printf("=== Figure 12 decision flow ===\n");
  for (const Query& query : queries) {
    for (int threads : {1, 8}) {
      for (bool worm : {false, true}) {
        const WorkloadProfile profile =
            ProfileForQuery(query, worm, /*prebuilt_index=*/worm, threads);
        std::printf("%s t=%d %s: %s\n", query.id.c_str(), threads,
                    worm ? "WORM" : "WORO",
                    ExplainRecommendation(profile).c_str());
      }
    }
  }

  // Execute each vector recommendation end-to-end.
  std::printf("\n=== executing the single-threaded WORO recommendations ===\n");
  DatasetSpec spec{Distribution::kMovingCluster, 200000, 1000, 12};
  const auto keys = GenerateKeys(spec);
  const auto values = GenerateValues(keys.size(), 1000);
  for (const Query& query : queries) {
    const std::string label = RecommendAlgorithm(ProfileForQuery(query));
    if (query.output == OutputFormat::kScalar) {
      if (query.function == AggregateFunction::kMedian) {
        auto aggregator = MakeScalarMedianAggregator(label);
        aggregator->Build(keys.data(), nullptr, keys.size());
        std::printf("%s via %s -> %.2f\n", query.id.c_str(), label.c_str(),
                    aggregator->Finalize());
      } else {
        std::printf("%s is a streaming scalar (no data structure needed)\n",
                    query.id.c_str());
      }
      continue;
    }
    auto aggregator =
        MakeVectorAggregator(label, query.function, keys.size());
    aggregator->Build(keys.data(), values.data(), keys.size());
    const auto result = query.has_range_condition
                            ? aggregator->IterateRange(query.range_lo,
                                                       query.range_hi)
                            : aggregator->Iterate();
    std::printf("%s via %s -> %zu groups\n", query.id.c_str(), label.c_str(),
                result.size());
  }
  return 0;
}
