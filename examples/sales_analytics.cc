// Sales analytics: the workload class that motivates the paper's intro —
// grouping transactional data by product and computing distributive,
// algebraic, and range-filtered aggregates.
//
// Runs three queries over one synthetic sales table:
//   Q1  revenue events per product          (COUNT, Hash_LP)
//   Q2  average order value per product     (AVG,   Hash_LP)
//   Q7  best sellers in a product-id range  (COUNT with BETWEEN, Btree)
//
// Shows how one prebuilt tree index can serve repeated range queries
// (the WORM scenario of Section 5.6).

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "data/dataset.h"

int main() {
  using namespace memagg;

  // Synthetic sales table: 1M orders over 10k products with heavy hitters
  // (a few products dominate sales, as in real catalogs).
  constexpr uint64_t kOrders = 1000000;
  constexpr uint64_t kProducts = 10000;
  DatasetSpec spec{Distribution::kHhitShuffled, kOrders, kProducts, 2024};
  const auto product_ids = GenerateKeys(spec);
  const auto order_values = GenerateValues(kOrders, /*value_range=*/50000);

  // --- Q1: orders per product (top seller lookup) ---
  auto count_agg = MakeVectorAggregator("Hash_LP", AggregateFunction::kCount,
                                        kOrders);
  count_agg->Build(product_ids.data(), nullptr, kOrders);
  uint64_t top_product = 0;
  double top_orders = 0;
  for (const GroupResult& row : count_agg->Iterate()) {
    if (row.value > top_orders) {
      top_orders = row.value;
      top_product = row.key;
    }
  }
  std::printf("Q1: %llu products; top seller = product %llu with %.0f orders\n",
              static_cast<unsigned long long>(count_agg->NumGroups()),
              static_cast<unsigned long long>(top_product), top_orders);

  // --- Q2: average order value per product ---
  auto avg_agg = MakeVectorAggregator("Hash_LP", AggregateFunction::kAverage,
                                      kOrders);
  avg_agg->Build(product_ids.data(), order_values.data(), kOrders);
  double total_avg = 0;
  size_t groups = 0;
  for (const GroupResult& row : avg_agg->Iterate()) {
    total_avg += row.value;
    ++groups;
  }
  std::printf("Q2: mean of per-product average order values = %.2f\n",
              total_avg / static_cast<double>(groups));

  // --- Q7: order counts for products 500..1000, repeated range scans over
  // one prebuilt Btree (WORM: build once, scan many) ---
  auto range_agg = MakeVectorAggregator("Btree", AggregateFunction::kCount,
                                        kOrders);
  range_agg->Build(product_ids.data(), nullptr, kOrders);
  const Query q7 = MakeQ7(500, 1000);
  const auto in_range = range_agg->IterateRange(q7.range_lo, q7.range_hi);
  double range_orders = 0;
  for (const GroupResult& row : in_range) range_orders += row.value;
  std::printf("Q7: products %llu-%llu: %zu products, %.0f orders\n",
              static_cast<unsigned long long>(q7.range_lo),
              static_cast<unsigned long long>(q7.range_hi), in_range.size(),
              range_orders);

  // The same index answers more ranges with no rebuild.
  for (uint64_t lo = 0; lo < 5000; lo += 2500) {
    const auto rows = range_agg->IterateRange(lo, lo + 2499);
    std::printf("Q7: products %llu-%llu -> %zu groups\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(lo + 2499), rows.size());
  }
  return 0;
}
